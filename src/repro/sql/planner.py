"""Query decomposition and planning (paper §4.2 step 6).

The planner turns a parsed statement plus the catalog schema into an
executable plan. Its central job is the paper's *query conversion*: every
filter — equality, inequality, greater/less than (inclusive or exclusive),
BETWEEN — becomes a **range filter** with optional open ends, so that after
the proxy encrypts the bounds the DBaaS provider cannot distinguish query
types. ``!=`` becomes a negated equality range (complement of the matching
RecordIDs).

Plans separate what the *server* executes (filtering and tuple
reconstruction of the needed columns) from what the *proxy* computes after
decryption (aggregates, GROUP BY, ORDER BY, LIMIT): an untrusted server
cannot aggregate or order ciphertexts, so the result renderer ships the
filtered encrypted columns back and the trusted side finishes the job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.columnstore.catalog import Catalog
from repro.columnstore.types import ColumnSpec, IntegerType, VarcharType, parse_type
from repro.encdict.options import kind_by_name
from repro.exceptions import PlanError
from repro.sql.ast_nodes import (
    Aggregate,
    Comparison,
    CreateTable,
    Delete,
    Insert,
    Logical,
    MergeTable,
    OrderItem,
    Select,
    Update,
)


# ----------------------------------------------------------------------
# Filter plan nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RangeFilter:
    """A per-column range condition in plaintext value space.

    ``low``/``high`` of ``None`` mean the domain minimum/maximum (the
    ``-inf``/``+inf`` placeholders of §4.2). For encrypted columns the proxy
    replaces this node with an :class:`EncryptedRangeFilter` before the plan
    leaves the trusted realm.
    """

    column: str
    low: Any | None = None
    low_inclusive: bool = True
    high: Any | None = None
    high_inclusive: bool = True
    negated: bool = False


@dataclass(frozen=True)
class EncryptedRangeFilter:
    """A range filter whose bounds are PAE-encrypted (``τ``)."""

    column: str
    tau: tuple[bytes, bytes]
    negated: bool = False


@dataclass(frozen=True)
class PrefixFilter:
    """A LIKE-'prefix%' condition.

    On encrypted columns the proxy turns it into an ordinary encrypted
    range over the prefix's ordinal interval (indistinguishable from any
    other range filter); on plaintext columns the executor matches by
    ``startswith``.
    """

    column: str
    prefix: str
    negated: bool = False


@dataclass(frozen=True)
class FilterNode:
    """AND/OR/NOT combination of filters (NOT has a single child)."""

    operator: str  # AND | OR | NOT
    children: tuple[Any, ...]


FilterPlan = RangeFilter | EncryptedRangeFilter | PrefixFilter | FilterNode


# ----------------------------------------------------------------------
# Statement plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PostProcessing:
    """The trusted-side rendering the proxy applies after decryption."""

    items: tuple[Any, ...]  # column names and/or Aggregate
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.items)


@dataclass(frozen=True)
class SelectPlan:
    table: str
    needed_columns: tuple[str, ...]  # server-side projection
    filter: FilterPlan | None
    post: PostProcessing


@dataclass(frozen=True)
class JoinSelectPlan:
    """An inner equi-join of two tables (paper §4.2 future work).

    WHERE conjuncts have been split per table; columns in ``post`` and the
    ``needed`` projections are qualified (``table.column``). The join itself
    is executed on enclave-issued join tokens, so it works across encrypted
    and plaintext join columns alike.
    """

    left_table: str
    right_table: str
    left_column: str  # unqualified join columns
    right_column: str
    left_needed: tuple[str, ...]  # unqualified, per table
    right_needed: tuple[str, ...]
    left_filter: FilterPlan | None
    right_filter: FilterPlan | None
    post: PostProcessing


@dataclass(frozen=True)
class InsertPlan:
    table: str
    rows: tuple[dict, ...]  # column name -> plaintext value


@dataclass(frozen=True)
class DeletePlan:
    table: str
    filter: FilterPlan | None


@dataclass(frozen=True)
class UpdatePlan:
    """Executed by the proxy as read + delete + re-insert (paper §4.3)."""

    table: str
    assignments: tuple[tuple[str, Any], ...]
    filter: FilterPlan | None


@dataclass(frozen=True)
class CreatePlan:
    table: str
    specs: tuple[ColumnSpec, ...]


@dataclass(frozen=True)
class MergePlan:
    table: str


# ----------------------------------------------------------------------
# Analytics pushdown routing (PR 9)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AggregatePushdown:
    """Server-side description of an aggregate / GROUP BY pushdown.

    Derived from a :class:`SelectPlan` by :func:`pushdown_request` — never
    sent by the proxy, so the wire protocol is unchanged. ``specs`` feeds
    the ``aggregate_groups`` ecall verbatim.
    """

    specs: tuple[tuple, ...]  # (function, measure column | None, label)
    group_column: str | None
    measure_columns: tuple[str, ...]


@dataclass(frozen=True)
class OrderPushdown:
    """Server-side description of an ordinal-order ORDER BY + LIMIT.

    Needs no ecall at all: a sorted-kind dictionary's ValueID order *is*
    value order (public layout, §4.1 leakage already paid for), so the
    executor sorts the attribute vector and truncates to the LIMIT.
    """

    column: str
    descending: bool
    limit: int


def pushdown_request(
    plan: SelectPlan, catalog: Catalog
) -> tuple[tuple, AggregatePushdown | OrderPushdown | None]:
    """Structural half of the cost-based routing (PR 9).

    Decides, from the plan shape and public column layout alone, whether the
    SELECT's post-processing *can* move server-side; the executor applies
    the row-count-dependent cost gate afterwards. Returns ``(decisions,
    request)`` — :class:`~repro.sql.result.RoutingDecision` per clause, and
    the pushdown description or ``None`` for the proxy-side reference path.
    """
    from repro.sql.result import RoutingDecision

    post = plan.post
    table = catalog.table(plan.table)
    if post.has_aggregates:
        return _aggregate_request(post, table)
    if post.order_by and post.limit is not None:
        return _order_request(post, table)
    if post.order_by:
        return (
            RoutingDecision(
                "order-by", False, "no LIMIT: the full ordered result ships anyway"
            ),
        ), None
    return (
        RoutingDecision("rows", False, "plain row select: nothing to push"),
    ), None


def _aggregate_request(post: PostProcessing, table):
    from repro.sql.result import RoutingDecision

    def refuse(reason: str):
        return (RoutingDecision("aggregate", False, reason),), None

    if len(post.group_by) > 1:
        return refuse("multi-column GROUP BY needs composite keys: proxy-side")
    group_column = post.group_by[0] if post.group_by else None
    if group_column is not None and not table.spec(group_column).is_encrypted:
        return refuse(
            f"group column {group_column!r} is plaintext (no ordinal dictionary)"
        )
    specs: list[tuple] = []
    measure_columns: list[str] = []
    for item in post.items:
        if not isinstance(item, Aggregate):
            continue
        if item.function == "COUNT":
            specs.append(("COUNT", None, item.label))
            continue
        spec = table.spec(item.column)
        if not spec.is_encrypted:
            return refuse(f"measure column {item.column!r} is plaintext")
        if not isinstance(spec.value_type, IntegerType):
            return refuse(
                f"{item.label}: only INTEGER measures have mergeable int64 states"
            )
        specs.append((item.function, item.column, item.label))
        if item.column not in measure_columns:
            measure_columns.append(item.column)
    for name in (group_column, *measure_columns):
        if name is None:
            continue
        if getattr(table.column(name), "shadow", None) is not None:
            return refuse(
                f"rotation in flight on {name!r}: epoch-mixed stores, proxy-side"
            )
    target = f"GROUP BY {group_column}" if group_column else "global"
    return (
        RoutingDecision(
            "aggregate",
            True,
            f"ordinal-space {target}, {len(specs)} aggregate(s) in one ecall",
        ),
    ), AggregatePushdown(tuple(specs), group_column, tuple(measure_columns))


def _order_request(post: PostProcessing, table):
    from repro.encdict.options import OrderOption
    from repro.sql.result import RoutingDecision

    def refuse(reason: str):
        return (RoutingDecision("order-by", False, reason),), None

    if post.distinct:
        return refuse("DISTINCT dedupes before LIMIT: truncation needs all rows")
    if len(post.order_by) != 1:
        return refuse("multi-column ORDER BY is proxy-side")
    order = post.order_by[0]
    spec = table.spec(order.column)
    if not spec.is_encrypted:
        return refuse(f"order column {order.column!r} is plaintext")
    if spec.protection.order is not OrderOption.SORTED:
        return refuse(
            f"{spec.protection.name} dictionary is not ordinal-sorted: proxy-side"
        )
    column = table.column(order.column)
    if getattr(column, "shadow", None) is not None:
        return refuse(f"rotation in flight on {order.column!r}: proxy-side")
    if len(getattr(column, "partition_builds", ())) != 1:
        return refuse(
            f"{len(column.partition_builds)} partitions: ordinals are "
            "partition-local, proxy-side"
        )
    if getattr(column, "delta_blobs", None):
        return refuse("delta rows are unsorted (ED9): full sort proxy-side")
    direction = "DESC" if order.descending else "ASC"
    return (
        RoutingDecision(
            "order-by",
            True,
            f"ordinal-order {order.column} {direction} LIMIT {post.limit} "
            "(sorted dictionary, no ecall)",
        ),
    ), OrderPushdown(order.column, order.descending, int(post.limit))


class Planner:
    """Validates statements against the catalog and emits plans."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # ------------------------------------------------------------------
    def plan(self, statement):
        if isinstance(statement, CreateTable):
            return self._plan_create(statement)
        if isinstance(statement, Insert):
            return self._plan_insert(statement)
        if isinstance(statement, Select):
            return self._plan_select(statement)
        if isinstance(statement, Delete):
            return DeletePlan(
                statement.table,
                self._plan_filter(statement.table, statement.where),
            )
        if isinstance(statement, Update):
            return self._plan_update(statement)
        if isinstance(statement, MergeTable):
            self._catalog.table(statement.table)  # validates existence
            return MergePlan(statement.table)
        raise PlanError(f"no plan for statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    def _plan_create(self, statement: CreateTable) -> CreatePlan:
        specs = []
        for column in statement.columns:
            value_type = parse_type(column.type_sql)
            protection = (
                kind_by_name(column.protection) if column.protection else None
            )
            if column.bsmax is not None and protection is None:
                raise PlanError(
                    f"BSMAX given for unprotected column {column.name!r}"
                )
            specs.append(
                ColumnSpec(
                    column.name,
                    value_type,
                    protection=protection,
                    bsmax=column.bsmax if column.bsmax is not None else 10,
                )
            )
        return CreatePlan(statement.table, tuple(specs))

    def _plan_insert(self, statement: Insert) -> InsertPlan:
        table = self._catalog.table(statement.table)
        column_names = (
            list(statement.columns)
            if statement.columns is not None
            else table.column_names
        )
        for name in column_names:
            table.spec(name)
        if set(column_names) != set(table.column_names):
            raise PlanError(
                "INSERT must provide a value for every column "
                f"of table {statement.table!r}"
            )
        rows = []
        for row in statement.rows:
            if len(row) != len(column_names):
                raise PlanError(
                    f"row has {len(row)} values for {len(column_names)} columns"
                )
            named = {}
            for name, value in zip(column_names, row):
                value_type = table.spec(name).value_type
                coerced = self._coerce_literal(value_type, value, name)
                value_type.validate(coerced)
                named[name] = coerced
            rows.append(named)
        return InsertPlan(statement.table, tuple(rows))

    def _plan_select(self, statement: Select):
        if statement.join is not None:
            return self._plan_join_select(statement)
        table = self._catalog.table(statement.table)
        if statement.is_star:
            items: tuple = tuple(table.column_names)
        else:
            items = statement.items
        needed: list[str] = []

        def need(name: str) -> None:
            table.spec(name)  # validates
            if name not in needed:
                needed.append(name)

        has_aggregate = any(isinstance(item, Aggregate) for item in items)
        has_plain_column = any(isinstance(item, str) for item in items)
        if has_aggregate and has_plain_column and not statement.group_by:
            raise PlanError(
                "mixing columns and aggregates requires GROUP BY"
            )
        for item in items:
            if isinstance(item, Aggregate):
                if item.column is not None:
                    need(item.column)
                    if item.function in ("SUM", "AVG") and not isinstance(
                        table.spec(item.column).value_type, IntegerType
                    ):
                        raise PlanError(
                            f"{item.function} needs an INTEGER column"
                        )
            else:
                need(item)
        for name in statement.group_by:
            need(name)
        for order in statement.order_by:
            need(order.column)
        if statement.group_by:
            for item in items:
                if isinstance(item, str) and item not in statement.group_by:
                    raise PlanError(
                        f"column {item!r} must appear in GROUP BY or an aggregate"
                    )
        post = PostProcessing(
            items=items,
            group_by=statement.group_by,
            order_by=statement.order_by,
            limit=statement.limit,
            distinct=statement.distinct,
        )
        return SelectPlan(
            statement.table,
            tuple(needed),
            self._plan_filter(statement.table, statement.where),
            post,
        )

    def _plan_join_select(self, statement: Select) -> JoinSelectPlan:
        join = statement.join
        left_name, right_name = statement.table, join.right_table
        if left_name == right_name:
            raise PlanError("self-joins are not supported")
        tables = {name: self._catalog.table(name) for name in (left_name, right_name)}

        def resolve(qualified: str) -> tuple[str, str]:
            if "." not in qualified:
                raise PlanError(
                    f"join queries require qualified column names, got {qualified!r}"
                )
            table_name, _, column = qualified.partition(".")
            if table_name not in tables:
                raise PlanError(f"unknown table {table_name!r} in {qualified!r}")
            tables[table_name].spec(column)  # validates the column
            return table_name, column

        left_join_table, left_join_column = resolve(join.left_column)
        right_join_table, right_join_column = resolve(join.right_column)
        if left_join_table == right_join_table:
            raise PlanError("JOIN ... ON must reference both tables")
        if left_join_table == right_name:  # ON right.x = left.y: normalize
            left_join_column, right_join_column = right_join_column, left_join_column
        left_type = tables[left_name].spec(left_join_column).value_type
        right_type = tables[right_name].spec(right_join_column).value_type
        if type(left_type) is not type(right_type):
            raise PlanError(
                f"join columns have incompatible types "
                f"{left_type.sql_name} and {right_type.sql_name}"
            )
        left_encrypted = tables[left_name].spec(left_join_column).is_encrypted
        right_encrypted = tables[right_name].spec(right_join_column).is_encrypted
        if left_encrypted != right_encrypted:
            raise PlanError(
                "join columns must both be encrypted or both plaintext "
                "(tokens and raw values cannot be matched)"
            )

        if statement.is_star:
            items: tuple = tuple(
                f"{name}.{column}"
                for name in (left_name, right_name)
                for column in tables[name].column_names
            )
        else:
            items = statement.items

        needed: dict[str, list[str]] = {left_name: [], right_name: []}

        def need(qualified: str) -> None:
            table_name, column = resolve(qualified)
            if column not in needed[table_name]:
                needed[table_name].append(column)

        has_aggregate = any(isinstance(item, Aggregate) for item in items)
        has_plain_column = any(isinstance(item, str) for item in items)
        if has_aggregate and has_plain_column and not statement.group_by:
            raise PlanError("mixing columns and aggregates requires GROUP BY")
        for item in items:
            if isinstance(item, Aggregate):
                if item.column is not None:
                    need(item.column)
            else:
                need(item)
        for qualified in statement.group_by:
            need(qualified)
        for order in statement.order_by:
            need(order.column)
        if statement.group_by:
            for item in items:
                if isinstance(item, str) and item not in statement.group_by:
                    raise PlanError(
                        f"column {item!r} must appear in GROUP BY or an aggregate"
                    )

        left_filter, right_filter = self._split_join_filter(
            statement.where, tables, left_name, right_name
        )
        post = PostProcessing(
            items=items,
            group_by=statement.group_by,
            order_by=statement.order_by,
            limit=statement.limit,
            distinct=statement.distinct,
        )
        return JoinSelectPlan(
            left_table=left_name,
            right_table=right_name,
            left_column=left_join_column,
            right_column=right_join_column,
            left_needed=tuple(needed[left_name]),
            right_needed=tuple(needed[right_name]),
            left_filter=left_filter,
            right_filter=right_filter,
            post=post,
        )

    def _split_join_filter(self, where, tables, left_name, right_name):
        """Split a WHERE tree into per-table filters (top-level AND only)."""
        if where is None:
            return None, None
        conjuncts = (
            list(where.operands)
            if isinstance(where, Logical) and where.operator == "AND"
            else [where]
        )
        per_table: dict[str, list] = {left_name: [], right_name: []}
        for conjunct in conjuncts:
            owner = self._predicate_table(conjunct, tables)
            per_table[owner].append(conjunct)

        def build(table_name: str):
            predicates = per_table[table_name]
            if not predicates:
                return None
            planned = [
                self._plan_qualified_predicate(table_name, tables[table_name], p)
                for p in predicates
            ]
            if len(planned) == 1:
                return planned[0]
            return FilterNode("AND", tuple(planned))

        return build(left_name), build(right_name)

    def _predicate_table(self, predicate, tables) -> str:
        """The single table a predicate subtree references."""
        if isinstance(predicate, Comparison):
            if "." not in predicate.column:
                raise PlanError(
                    f"join queries require qualified column names, got "
                    f"{predicate.column!r}"
                )
            table_name = predicate.column.partition(".")[0]
            if table_name not in tables:
                raise PlanError(f"unknown table {table_name!r} in WHERE")
            return table_name
        if isinstance(predicate, Logical):
            owners = {
                self._predicate_table(operand, tables)
                for operand in predicate.operands
            }
            if len(owners) != 1:
                raise PlanError(
                    "OR across tables is not supported in join queries; "
                    "only top-level AND may mix tables"
                )
            return owners.pop()
        raise PlanError(f"unsupported predicate {type(predicate).__name__}")

    def _plan_qualified_predicate(self, table_name, table, predicate):
        """Plan a per-table predicate subtree, stripping qualifications."""
        if isinstance(predicate, Comparison):
            unqualified = Comparison(
                predicate.column.partition(".")[2],
                predicate.operator,
                predicate.value,
                predicate.high_value,
            )
            return self._plan_comparison(table, unqualified)
        children = tuple(
            self._plan_qualified_predicate(table_name, table, operand)
            for operand in predicate.operands
        )
        return FilterNode(predicate.operator, children)

    def _plan_update(self, statement: Update) -> UpdatePlan:
        table = self._catalog.table(statement.table)
        assignments = []
        for column, value in statement.assignments:
            value_type = table.spec(column).value_type
            coerced = self._coerce_literal(value_type, value, column)
            value_type.validate(coerced)
            assignments.append((column, coerced))
        return UpdatePlan(
            statement.table,
            tuple(assignments),
            self._plan_filter(statement.table, statement.where),
        )

    # ------------------------------------------------------------------
    def _plan_filter(self, table_name: str, where) -> FilterPlan | None:
        if where is None:
            return None
        table = self._catalog.table(table_name)
        if isinstance(where, Comparison):
            return self._plan_comparison(table, where)
        if isinstance(where, Logical):
            children = tuple(
                self._plan_filter(table_name, operand) for operand in where.operands
            )
            return FilterNode(where.operator, children)
        raise PlanError(f"unsupported predicate {type(where).__name__}")

    def _plan_comparison(self, table, comparison: Comparison):
        spec = table.spec(comparison.column)
        value_type = spec.value_type
        if comparison.operator not in ("IN", "LIKE"):
            coerced = self._coerce_literal(
                value_type, comparison.value, comparison.column
            )
            self._check_literal(value_type, coerced, comparison.column)
            comparison = Comparison(
                comparison.column, comparison.operator, coerced, comparison.high_value
            )
        operator = comparison.operator
        if operator == "=":
            return RangeFilter(
                comparison.column, low=comparison.value, high=comparison.value
            )
        if operator == "!=":
            return RangeFilter(
                comparison.column,
                low=comparison.value,
                high=comparison.value,
                negated=True,
            )
        if operator == "<":
            return RangeFilter(
                comparison.column, high=comparison.value, high_inclusive=False
            )
        if operator == "<=":
            return RangeFilter(comparison.column, high=comparison.value)
        if operator == ">":
            return RangeFilter(
                comparison.column, low=comparison.value, low_inclusive=False
            )
        if operator == ">=":
            return RangeFilter(comparison.column, low=comparison.value)
        if operator == "IN":
            members = []
            for member in comparison.value:
                coerced_member = self._coerce_literal(
                    value_type, member, comparison.column
                )
                self._check_literal(value_type, coerced_member, comparison.column)
                members.append(
                    RangeFilter(
                        comparison.column, low=coerced_member, high=coerced_member
                    )
                )
            if len(members) == 1:
                return members[0]
            return FilterNode("OR", tuple(members))
        if operator == "LIKE":
            return self._plan_like(spec, comparison)
        if operator == "BETWEEN":
            high = self._coerce_literal(
                value_type, comparison.high_value, comparison.column
            )
            self._check_literal(value_type, high, comparison.column)
            return RangeFilter(comparison.column, low=comparison.value, high=high)
        raise PlanError(f"unsupported operator {operator!r}")

    def _plan_like(self, spec, comparison: Comparison):
        """LIKE with a trailing %% wildcard only: a prefix range filter."""
        if not isinstance(spec.value_type, VarcharType):
            raise PlanError("LIKE requires a VARCHAR column")
        pattern = comparison.value
        if not isinstance(pattern, str):
            raise PlanError("LIKE requires a string pattern")
        if "_" in pattern:
            raise PlanError("the LIKE wildcard '_' is not supported")
        body = pattern[:-1] if pattern.endswith("%") else None
        if body is None or "%" in body:
            raise PlanError(
                "only prefix patterns ('abc%%') are supported for LIKE"
            )
        if body == "":
            return RangeFilter(comparison.column)  # '%' matches everything
        self._check_literal(spec.value_type, body, comparison.column)
        return PrefixFilter(comparison.column, body)

    @staticmethod
    def _coerce_literal(value_type, value, column: str):
        try:
            return value_type.coerce(value)
        except Exception as exc:
            raise PlanError(
                f"literal {value!r} does not fit column {column!r}: {exc}"
            ) from None

    @staticmethod
    def _check_literal(value_type, value, column: str) -> None:
        try:
            value_type.validate(value)
        except Exception as exc:
            raise PlanError(
                f"literal {value!r} does not fit column {column!r}: {exc}"
            ) from None


def describe_plan(plan, catalog: Catalog | None = None, indent: str = "") -> str:
    """Human-readable plan tree (the proxy's EXPLAIN output).

    Annotates each range filter with how it will execute: an enclave
    dictionary search for encrypted columns, a local plaintext search
    otherwise.
    """

    def protection(table_name: str, column: str) -> str:
        if catalog is None or table_name not in catalog:
            return "?"
        spec = catalog.table(table_name).spec(column)
        if spec.protection is None:
            return "plaintext"
        return f"{spec.protection.name}, enclave dictionary search"

    def filter_lines(node, table_name: str, depth: int) -> list[str]:
        pad = "  " * depth
        if node is None:
            return [f"{pad}scan: all valid rows"]
        if isinstance(node, FilterNode):
            lines = [f"{pad}{node.operator}"]
            for child in node.children:
                lines.extend(filter_lines(child, table_name, depth + 1))
            return lines
        if isinstance(node, RangeFilter):
            low = "-inf" if node.low is None else repr(node.low)
            high = "+inf" if node.high is None else repr(node.high)
            open_bracket = "[" if node.low_inclusive else "("
            close_bracket = "]" if node.high_inclusive else ")"
            negated = "NOT " if node.negated else ""
            return [
                f"{pad}{negated}range {node.column} in "
                f"{open_bracket}{low}, {high}{close_bracket} "
                f"({protection(table_name, node.column)})"
            ]
        if isinstance(node, PrefixFilter):
            negated = "NOT " if node.negated else ""
            return [
                f"{pad}{negated}prefix {node.column} LIKE "
                f"{node.prefix!r}% ({protection(table_name, node.column)})"
            ]
        if isinstance(node, EncryptedRangeFilter):
            return [f"{pad}encrypted range {node.column} (tau)"]
        return [f"{pad}{node!r}"]

    def post_lines(post: PostProcessing, depth: int) -> list[str]:
        pad = "  " * depth
        lines = []
        if post.group_by:
            lines.append(f"{pad}proxy: GROUP BY {', '.join(post.group_by)}")
        if post.has_aggregates:
            aggregates = [
                item.label for item in post.items if isinstance(item, Aggregate)
            ]
            lines.append(f"{pad}proxy: aggregate {', '.join(aggregates)}")
        if post.order_by:
            rendered = ", ".join(
                f"{o.column} {'DESC' if o.descending else 'ASC'}"
                for o in post.order_by
            )
            lines.append(f"{pad}proxy: ORDER BY {rendered}")
        if post.distinct:
            lines.append(f"{pad}proxy: DISTINCT")
        if post.limit is not None:
            lines.append(f"{pad}proxy: LIMIT {post.limit}")
        return lines

    if isinstance(plan, SelectPlan):
        lines = [f"SELECT from {plan.table} "
                 f"(render columns: {', '.join(plan.needed_columns) or '-'})"]
        lines.extend(filter_lines(plan.filter, plan.table, 1))
        lines.extend(post_lines(plan.post, 1))
        return "\n".join(lines)
    if isinstance(plan, JoinSelectPlan):
        lines = [
            f"JOIN {plan.left_table}.{plan.left_column} = "
            f"{plan.right_table}.{plan.right_column} "
            "(enclave join tokens, hash join)"
        ]
        lines.append(f"  left {plan.left_table}:")
        lines.extend(filter_lines(plan.left_filter, plan.left_table, 2))
        lines.append(f"  right {plan.right_table}:")
        lines.extend(filter_lines(plan.right_filter, plan.right_table, 2))
        lines.extend(post_lines(plan.post, 1))
        return "\n".join(lines)
    if isinstance(plan, DeletePlan):
        lines = [f"DELETE from {plan.table}"]
        lines.extend(filter_lines(plan.filter, plan.table, 1))
        return "\n".join(lines)
    if isinstance(plan, UpdatePlan):
        assignments = ", ".join(f"{c} = {v!r}" for c, v in plan.assignments)
        lines = [f"UPDATE {plan.table} SET {assignments} "
                 "(proxy: read + invalidate + re-insert)"]
        lines.extend(filter_lines(plan.filter, plan.table, 1))
        return "\n".join(lines)
    if isinstance(plan, InsertPlan):
        return (
            f"INSERT {len(plan.rows)} row(s) into {plan.table} "
            "(proxy encrypts, enclave re-encrypts into the ED9 delta store)"
        )
    if isinstance(plan, CreatePlan):
        return f"CREATE TABLE {plan.table} ({len(plan.specs)} columns)"
    if isinstance(plan, MergePlan):
        return (
            f"MERGE TABLE {plan.table} "
            "(enclave rebuild: re-encrypt, re-rotate, re-shuffle)"
        )
    return repr(plan)

"""The query evaluation engine that runs at the (untrusted) DBaaS provider.

Evaluates plans against the column store: every range filter becomes a
dictionary search — through the enclave for encrypted columns, locally for
plaintext ones — followed by the untrusted attribute-vector search; AND/OR
nodes intersect/unite the RecordID sets; validity bits drop deleted rows;
and the result renderer reconstructs the requested columns (paper §4.2
steps 6-13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.columnstore.catalog import Catalog
from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.dictionary import DictionaryEncodedColumn
from repro.columnstore.partition import DEFAULT_PARTITION_ROWS, PartitionMap
from repro.columnstore.table import Table
from repro.exceptions import QueryError
from repro.runtime import map_on_build_pool
from repro.sgx.cache import FastPathConfig
from repro.sgx.enclave import EnclaveHost
from repro.sql.planner import (
    AggregatePushdown,
    DeletePlan,
    EncryptedRangeFilter,
    FilterNode,
    FilterPlan,
    JoinSelectPlan,
    MergePlan,
    OrderPushdown,
    PrefixFilter,
    RangeFilter,
    SelectPlan,
    pushdown_request,
)
from repro.sql.result import (
    AggregateFrames,
    PushdownSelectResult,
    ResultColumn,
    RoutingDecision,
    ServerResult,
)


@dataclass
class MergeStats:
    """What one incremental merge actually did (layout-level counters).

    ``partitions_rebuilt`` counts enclave rebuilds per partition slot, not
    per column — every column of the table rebuilds the same slots, since
    all columns share one partition layout.
    """

    table: str = ""
    partitions_total: int = 0
    partitions_kept: int = 0
    partitions_rebuilt: int = 0
    partitions_dropped: int = 0
    tail_partitions_added: int = 0
    delta_rows_merged: int = 0
    rows_after: int = 0


def _replace_decision(
    decisions: tuple, clause: str, pushed: bool, reason: str
) -> tuple:
    return tuple(
        RoutingDecision(clause, pushed, reason)
        if decision.clause == clause
        else decision
        for decision in decisions
    )


def _padded_frames(real_frames: int) -> int:
    """Mirror of the enclave's power-of-two frame-count padding (cost gate
    and EXPLAIN only — the enclave pads for real)."""
    return 1 << (max(1, real_frames) - 1).bit_length()


def _assemble_segments(
    segment_lists: dict[str, list], row_count: int
) -> list[dict]:
    """Zip per-column ordinal segments into ``aggregate_groups`` arguments.

    All columns of a table share one partition layout, so the per-column
    segment lists from :meth:`EncryptedStoredColumn.ordinal_segments` over
    the same RecordIDs are row-aligned; a mismatch means a concurrent
    layout change and aborts the query rather than misgrouping.
    """
    if not segment_lists:
        return [{"group": None, "rows": row_count, "measures": {}}]
    lengths = {len(segments) for segments in segment_lists.values()}
    if len(lengths) != 1:
        raise QueryError("ordinal segments are misaligned across columns")
    (count,) = lengths
    assembled = []
    for index in range(count):
        group_ref = (
            segment_lists["__group__"][index]
            if "__group__" in segment_lists
            else None
        )
        measures = {
            name: segments[index]
            for name, segments in segment_lists.items()
            if name != "__group__"
        }
        if group_ref is not None:
            rows = len(group_ref[1])
        else:
            rows = len(next(iter(measures.values()))[1])
        for name, (_dictionary, vids) in measures.items():
            if len(vids) != rows:
                raise QueryError(
                    f"ordinal segments of {name!r} are misaligned"
                )
        assembled.append(
            {"group": group_ref, "rows": rows, "measures": measures}
        )
    return assembled


class Executor:
    """Evaluates (already proxy-encrypted) plans on the column store."""

    def __init__(
        self,
        catalog: Catalog,
        enclave_host: EnclaveHost | None,
        *,
        fastpath: FastPathConfig | None = None,
    ) -> None:
        self._catalog = catalog
        self._host = enclave_host
        # A bare Executor keeps the paper-faithful one-ecall-per-filter
        # behaviour; EncDBDBServer passes its (default-enabled) config down.
        self.fastpath = fastpath if fastpath is not None else FastPathConfig.disabled()
        #: Layout-level counters of the most recent :meth:`merge`.
        self.last_merge_stats: MergeStats | None = None

    def _scan_config(self) -> tuple[int | None, int | None]:
        """``(chunk_rows, max_workers)`` for the attribute-vector scans."""
        if self.fastpath.parallel_scan_enabled:
            return self.fastpath.scan_chunk_rows, self.fastpath.scan_max_workers
        return None, None

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def filter_record_ids(self, table: Table, plan: FilterPlan | None) -> np.ndarray:
        """Evaluate a filter tree to the set of matching, valid RecordIDs."""
        if plan is None:
            return table.all_valid_rids()
        # Per-query state: batched enclave results keyed by filter leaf, and
        # a scan-mask cache shared by all filters on this query's columns.
        prepared = self._prepare_encrypted_searches(table, plan)
        scan_cache = {} if self.fastpath.scan_mask_reuse_enabled else None
        return table.filter_valid(self._evaluate(table, plan, prepared, scan_cache))

    def _collect_encrypted_leaves(
        self, plan: FilterPlan, leaves: list[EncryptedRangeFilter]
    ) -> None:
        if isinstance(plan, FilterNode):
            for child in plan.children:
                self._collect_encrypted_leaves(child, leaves)
        elif isinstance(plan, EncryptedRangeFilter):
            leaves.append(plan)

    def _prepare_encrypted_searches(
        self, table: Table, plan: FilterPlan
    ) -> dict[int, list] | None:
        """Run every encrypted dictionary search of a plan in ONE ecall.

        Collects the ``(dictionary, τ)`` requests of all encrypted filter
        leaves (main and delta stores) and issues a single
        ``dict_search_batch`` boundary crossing, returning a map from leaf
        identity to its labeled :class:`SearchResult`\\ s. Returns ``None``
        — meaning "use the per-leaf slow path" — when batching is off, no
        enclave is attached, or the plan needs at most one search anyway.
        """
        if not self.fastpath.batching_enabled or self._host is None:
            return None
        leaves: list[EncryptedRangeFilter] = []
        self._collect_encrypted_leaves(plan, leaves)
        if not leaves:
            return None
        requests = []  # flat [(dictionary, tau), ...] for the ecall
        slots = []  # parallel [(leaf_id, store_label), ...]
        for leaf in leaves:
            column = table.column(leaf.column)
            if not isinstance(column, EncryptedStoredColumn):
                raise QueryError(
                    f"encrypted filter for plaintext column {leaf.column!r}"
                )
            for label, dictionary, tau in column.search_requests(leaf.tau):
                requests.append((dictionary, tau))
                slots.append((id(leaf), label))
        if len(requests) < 2:
            # Nothing to amortize: a single search stays on dict_search.
            return None
        results = self._host.ecall("dict_search_batch", requests)
        prepared: dict[int, list] = {id(leaf): [] for leaf in leaves}
        for (leaf_id, label), result in zip(slots, results):
            prepared[leaf_id].append((label, result))
        return prepared

    def _evaluate(
        self,
        table: Table,
        plan: FilterPlan,
        prepared: dict[int, list] | None = None,
        scan_cache: dict | None = None,
    ) -> np.ndarray:
        if isinstance(plan, FilterNode):
            child_sets = [
                self._evaluate(table, child, prepared, scan_cache)
                for child in plan.children
            ]
            if plan.operator == "NOT":
                if len(child_sets) != 1:
                    raise QueryError("NOT takes exactly one operand")
                return self._complement(table, child_sets[0])
            if plan.operator == "AND":
                combined = child_sets[0]
                for rids in child_sets[1:]:
                    combined = np.intersect1d(combined, rids, assume_unique=True)
                return combined
            if plan.operator == "OR":
                return np.union1d(
                    child_sets[0],
                    child_sets[1]
                    if len(child_sets) == 2
                    else np.concatenate(child_sets[1:]),
                )
            raise QueryError(f"unknown filter operator {plan.operator!r}")
        if isinstance(plan, RangeFilter):
            return self._evaluate_plain(table, plan)
        if isinstance(plan, PrefixFilter):
            return self._evaluate_prefix(table, plan)
        if isinstance(plan, EncryptedRangeFilter):
            return self._evaluate_encrypted(table, plan, prepared, scan_cache)
        raise QueryError(f"unknown filter node {type(plan).__name__}")

    def _evaluate_plain(self, table: Table, plan: RangeFilter) -> np.ndarray:
        column = table.column(plan.column)
        if not isinstance(column, PlainStoredColumn):
            raise QueryError(
                f"plaintext filter reached encrypted column {plan.column!r}; "
                "the proxy must encrypt it first"
            )
        matches = column.search_filter(
            plan.low, plan.low_inclusive, plan.high, plan.high_inclusive
        )
        if plan.negated:
            return self._complement(table, matches)
        return matches

    def _evaluate_prefix(self, table: Table, plan: PrefixFilter) -> np.ndarray:
        column = table.column(plan.column)
        if not isinstance(column, PlainStoredColumn):
            raise QueryError(
                f"plaintext prefix filter reached encrypted column "
                f"{plan.column!r}; the proxy must encrypt it first"
            )
        matches = column.search_prefix(plan.prefix)
        if plan.negated:
            return self._complement(table, matches)
        return matches

    def _evaluate_encrypted(
        self,
        table: Table,
        plan: EncryptedRangeFilter,
        prepared: dict[int, list] | None = None,
        scan_cache: dict | None = None,
    ) -> np.ndarray:
        column = table.column(plan.column)
        if not isinstance(column, EncryptedStoredColumn):
            raise QueryError(
                f"encrypted filter for plaintext column {plan.column!r}"
            )
        if self._host is None:
            raise QueryError("no enclave available for encrypted columns")
        chunk_rows, max_workers = self._scan_config()
        if prepared is not None and id(plan) in prepared:
            matches = column.record_ids_from_results(
                prepared[id(plan)],
                cost_model=self._host.cost_model,
                chunk_rows=chunk_rows,
                max_workers=max_workers,
                scan_cache=scan_cache,
            )
        else:
            matches = column.search_tau(
                plan.tau,
                self._host,
                chunk_rows=chunk_rows,
                max_workers=max_workers,
                scan_cache=scan_cache,
            )
        if plan.negated:
            return self._complement(table, matches)
        return matches

    @staticmethod
    def _complement(table: Table, matches: np.ndarray) -> np.ndarray:
        universe = np.arange(table.row_count, dtype=np.int64)
        return np.setdiff1d(universe, matches, assume_unique=False)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def select(self, plan: SelectPlan) -> ServerResult:
        table = self._catalog.table(plan.table)
        record_ids = self.filter_record_ids(table, plan.filter)
        result = ServerResult(table_name=table.name, record_ids=record_ids)
        for name in plan.needed_columns:
            result.columns[name] = self._render_column(table, name, record_ids)
        return result

    def _render_column(
        self, table: Table, name: str, record_ids: np.ndarray
    ) -> ResultColumn:
        column = table.column(name)
        if isinstance(column, PlainStoredColumn):
            data: list[Any] = [column.value_at(int(rid)) for rid in record_ids]
            return ResultColumn(table.name, name, encrypted=False, data=data)
        builds, delta_blobs, key_epoch = column.render_view()
        blobs = [
            column.blob_at(int(rid), builds, delta_blobs) for rid in record_ids
        ]
        return ResultColumn(
            table.name, name, encrypted=True, data=blobs, key_epoch=key_epoch
        )

    # ------------------------------------------------------------------
    # Analytics pushdown (PR 9)
    # ------------------------------------------------------------------
    def select_pushdown(self, plan: SelectPlan) -> PushdownSelectResult:
        """One SELECT through the cost-based pushdown router.

        Filters run exactly as in :meth:`select`; what changes is what ships
        back. Aggregates/GROUP BY go through the ``aggregate_groups`` ecall
        and return padded group frames; an eligible ORDER BY + LIMIT sorts
        the attribute vector in ordinal space and ships only the top rows;
        everything else — including every structural or cost fallback — is
        the unchanged row-shipping path, with the decision attached.
        """
        table = self._catalog.table(plan.table)
        decisions, request = pushdown_request(plan, self._catalog)
        if request is not None and self._host is None:
            decisions = _replace_decision(
                decisions, decisions[0].clause, False, "no enclave attached"
            )
            request = None
        if request is None:
            return PushdownSelectResult(
                decisions=decisions, rows=self.select(plan)
            )
        record_ids = self.filter_record_ids(table, plan.filter)
        if isinstance(request, AggregatePushdown):
            return self._select_aggregate_pushdown(
                plan, table, decisions, request, record_ids
            )
        return self._select_order_pushdown(
            plan, table, decisions, request, record_ids
        )

    def explain_pushdown(self, plan: SelectPlan) -> tuple:
        """The routing decisions :meth:`select_pushdown` would make, without
        executing. The cost gate runs on the table's live row count — the
        static stand-in for the post-filter cardinality EXPLAIN cannot know."""
        table = self._catalog.table(plan.table)
        decisions, request = pushdown_request(plan, self._catalog)
        if request is not None and self._host is None:
            return _replace_decision(
                decisions, decisions[0].clause, False, "no enclave attached"
            )
        if isinstance(request, AggregatePushdown):
            pushed, note = self._aggregate_cost_gate(
                plan, table, request, table.live_row_count
            )
            original = decisions[0].reason
            reason = f"{original}; {note}" if pushed else note
            decisions = _replace_decision(decisions, "aggregate", pushed, reason)
        return decisions

    def _select_aggregate_pushdown(
        self, plan, table, decisions, request, record_ids
    ) -> PushdownSelectResult:
        pushed, note = self._aggregate_cost_gate(
            plan, table, request, len(record_ids)
        )
        if pushed:
            # The structural check ran before filtering; a rotation may have
            # started since. Re-check against the live columns — a raced
            # query falls back to row shipping rather than mixing stores.
            for name in (request.group_column, *request.measure_columns):
                if name is None:
                    continue
                if getattr(table.column(name), "shadow", None) is not None:
                    pushed = False
                    note = f"rotation started on {name!r} mid-query: proxy-side"
                    break
        if not pushed:
            decisions = _replace_decision(decisions, "aggregate", False, note)
            return PushdownSelectResult(
                decisions=decisions,
                rows=self._render_rows(plan, table, record_ids),
            )
        decisions = _replace_decision(
            decisions, "aggregate", True, f"{decisions[0].reason}; {note}"
        )
        segment_lists: dict[str, list] = {}
        if request.group_column is not None:
            segment_lists["__group__"] = table.column(
                request.group_column
            ).ordinal_segments(record_ids)
        for name in request.measure_columns:
            segment_lists[name] = table.column(name).ordinal_segments(record_ids)
        segments = _assemble_segments(segment_lists, len(record_ids))
        frames = self._host.ecall(
            "aggregate_groups",
            table.name,
            request.specs,
            segments,
            group_column=request.group_column,
        )
        aggregate = AggregateFrames(
            table_name=table.name,
            group_column=request.group_column,
            labels=tuple(label for _function, _column, label in request.specs),
            frames=tuple(frames),
        )
        return PushdownSelectResult(decisions=decisions, aggregate=aggregate)

    def _select_order_pushdown(
        self, plan, table, decisions, request: OrderPushdown, record_ids
    ) -> PushdownSelectResult:
        column = table.column(request.column)
        if (
            getattr(column, "shadow", None) is not None
            or len(column.partition_builds) != 1
            or column.delta_blobs
        ):
            decisions = _replace_decision(
                decisions,
                "order-by",
                False,
                "column layout changed mid-query: full sort proxy-side",
            )
            return PushdownSelectResult(
                decisions=decisions,
                rows=self._render_rows(plan, table, record_ids),
            )
        # Single partition and no delta: global RecordIDs are partition-local
        # positions, and ValueID order is value order (sorted kind). A stable
        # argsort keeps ties in RecordID order, matching the proxy's stable
        # re-sort of the shipped rows.
        vids = column.partition_builds[0].attribute_vector[record_ids]
        order = np.argsort(-vids if request.descending else vids, kind="stable")
        keep = record_ids[order][: request.limit]
        return PushdownSelectResult(
            decisions=decisions,
            rows=self._render_rows(plan, table, keep),
            ordered=True,
        )

    def _render_rows(self, plan, table, record_ids) -> ServerResult:
        result = ServerResult(table_name=table.name, record_ids=record_ids)
        for name in plan.needed_columns:
            result.columns[name] = self._render_column(table, name, record_ids)
        return result

    def _aggregate_cost_gate(
        self, plan, table, request: AggregatePushdown, rows: int
    ) -> tuple[bool, str]:
        """Row shipping vs. pushdown, in the cost model's cycle currency.

        Uses only public quantities: the filtered row count, dictionary
        entry counts (distinct-value upper bounds), and blob sizes. Proxy
        path ≈ one AES-GCM per row per encrypted result column; pushdown ≈
        one ecall + one AES-GCM per *distinct* group/measure entry + the
        padded frame encryptions.
        """
        parameters = self._host.cost_model.parameters
        columns = [
            name
            for name in (request.group_column, *request.measure_columns)
            if name is not None
        ]
        blob_bytes = 64
        distinct = 0
        for name in columns:
            column = table.column(name)
            entries = sum(
                len(build.dictionary) for build in column.partition_builds
            ) + len(column.delta_blobs)
            distinct += min(entries, rows)
            for build in column.partition_builds:
                if len(build.dictionary):
                    blob_bytes = max(blob_bytes, len(build.dictionary.entry(0)))
                    break
        per_blob = (
            parameters.aes_gcm_fixed_cycles
            + blob_bytes * parameters.aes_gcm_per_byte_cycles
        )
        encrypted_needed = sum(
            1 for name in plan.needed_columns if table.spec(name).is_encrypted
        )
        proxy_cost = rows * max(1, encrypted_needed) * per_blob + rows * (
            parameters.untrusted_load_cycles
        )
        if request.group_column is not None:
            group_column = table.column(request.group_column)
            group_entries = sum(
                len(build.dictionary) for build in group_column.partition_builds
            ) + len(group_column.delta_blobs)
        else:
            group_entries = 1
        frames = _padded_frames(min(group_entries, max(1, rows)))
        frame_bytes = 64 + 17 * len(request.specs)
        push_cost = (
            parameters.ecall_cycles
            + distinct * per_blob
            + frames
            * (
                parameters.aes_gcm_fixed_cycles
                + frame_bytes * parameters.aes_gcm_per_byte_cycles
            )
        )
        if push_cost >= proxy_cost:
            return False, (
                f"cost: row shipping cheaper (~{proxy_cost} vs ~{push_cost} "
                f"cycles for {rows} rows, ~{distinct} distinct entries)"
            )
        return True, (
            f"cost: ~{push_cost} vs ~{proxy_cost} cycles "
            f"({rows} rows -> {frames} padded frames, "
            f"~{distinct} distinct decryptions)"
        )

    def select_join(self, plan: JoinSelectPlan, salt: bytes) -> ServerResult:
        """Inner equi-join on enclave-issued join tokens.

        Filters run per table first; the surviving rows are matched by the
        opaque tokens the enclave derives for the two join columns under the
        per-query ``salt``, and the requested columns of both sides are
        rendered for every matched pair.
        """
        left_table = self._catalog.table(plan.left_table)
        right_table = self._catalog.table(plan.right_table)
        left_rids = self.filter_record_ids(left_table, plan.left_filter)
        right_rids = self.filter_record_ids(right_table, plan.right_filter)

        left_keys = self._join_keys(left_table, plan.left_column, salt)
        right_keys = self._join_keys(right_table, plan.right_column, salt)

        matches_by_key: dict = {}
        for rid in right_rids:
            matches_by_key.setdefault(right_keys[int(rid)], []).append(int(rid))

        left_pairs: list[int] = []
        right_pairs: list[int] = []
        for rid in left_rids:
            for right_rid in matches_by_key.get(left_keys[int(rid)], ()):
                left_pairs.append(int(rid))
                right_pairs.append(right_rid)

        result = ServerResult(
            table_name=plan.left_table,
            record_ids=np.asarray(left_pairs, dtype=np.int64),
        )
        for table, needed, pair_rids in (
            (left_table, plan.left_needed, left_pairs),
            (right_table, plan.right_needed, right_pairs),
        ):
            rid_array = np.asarray(pair_rids, dtype=np.int64)
            for name in needed:
                rendered = self._render_column(table, name, rid_array)
                result.columns[f"{table.name}.{name}"] = rendered
        return result

    def _join_keys(self, table: Table, column_name: str, salt: bytes) -> list:
        column = table.column(column_name)
        if isinstance(column, PlainStoredColumn):
            return column.join_keys()
        if self._host is None:
            raise QueryError("no enclave available for encrypted joins")
        return column.join_tokens(self._host, salt)

    def insert_prepared(self, table_name: str, prepared_rows: list[dict]) -> int:
        """Append proxy-prepared rows (encrypted columns carry transit blobs).

        Returns the number of inserted rows.
        """
        table = self._catalog.table(table_name)
        for prepared in prepared_rows:
            if set(prepared) != set(table.column_names):
                raise QueryError("prepared row does not cover every column")
            for name in table.column_names:
                column = table.column(name)
                payload = prepared[name]
                if isinstance(column, PlainStoredColumn):
                    column.append(payload)
                else:
                    if self._host is None:
                        raise QueryError("no enclave available for inserts")
                    column.append_transit_blob(payload, self._host)
            table.register_insert()
        return len(prepared_rows)

    def delete(self, plan: DeletePlan) -> int:
        table = self._catalog.table(plan.table)
        record_ids = self.filter_record_ids(table, plan.filter)
        return table.delete_rows(record_ids)

    # ------------------------------------------------------------------
    # Delta merge (paper §4.3)
    # ------------------------------------------------------------------
    def merge(self, plan: MergePlan) -> int:
        """Incremental merge: rebuild only the partitions that changed.

        A main-store partition is *dirty* when it contains at least one
        cleared validity bit; clean partitions are carried over untouched
        (their dictionaries, attribute vectors — and the enclave's cached
        plaintext for them — survive). Valid delta rows are absorbed into
        the final partition when they fit, otherwise they become fresh tail
        partitions of at most ``partition_rows`` rows each. The merge cost
        is therefore proportional to the dirty rows, not the table size.

        The *untrusted* per-partition preparation — collecting surviving
        ciphertext blobs, rebuilding plaintext dictionaries — fans out over
        the shared build pool (the scan-worker knob); the per-partition
        ``rebuild_for_merge`` ecalls stay strictly serial, in partition
        order, so the enclave's cost accounting and randomness consumption
        are identical to a fully serial merge.
        """
        table = self._catalog.table(plan.table)
        valid = np.asarray(table.validity, dtype=bool)
        survivors = int(valid.sum())
        columns = [table.column(name) for name in table.column_names]

        # All columns of a table share one partition layout by construction.
        lengths = columns[0].partition_lengths if columns else []
        for column in columns[1:]:
            if column.partition_lengths != lengths:
                raise QueryError(
                    f"misaligned column partitions in table {table.name}"
                )
        main_rows = sum(lengths)
        partition_rows = (
            getattr(table, "partition_rows", None) or DEFAULT_PARTITION_ROWS
        )
        pmap = PartitionMap(lengths)
        dirty = set(pmap.dirty_partitions(valid))

        delta_mask = valid[main_rows:]
        delta_indices = np.nonzero(delta_mask)[0]
        delta_count = int(len(delta_indices))

        # Absorb the delta into the last partition when the combined row
        # count still fits one partition (keeps small tables at their seed
        # single-partition layout); overflow goes to fresh tail partitions.
        absorb_index = None
        if delta_count and lengths:
            last = len(lengths) - 1
            last_survivors = int(
                valid[pmap.starts[last] : pmap.starts[last] + lengths[last]].sum()
            )
            if 0 < last_survivors and last_survivors + delta_count <= partition_rows:
                absorb_index = last
                dirty.add(last)

        stats = MergeStats(
            table=table.name,
            partitions_total=len(lengths),
            delta_rows_merged=delta_count,
            rows_after=survivors,
        )
        # Per-partition decisions, shared by every column of the table.
        decisions: list[tuple[str, int]] = []
        keep_masks: dict[int, np.ndarray] = {}
        for index, (start, length) in enumerate(zip(pmap.starts, lengths)):
            if index not in dirty:
                decisions.append(("keep", index))
                stats.partitions_kept += 1
                continue
            mask = valid[start : start + length]
            if mask.any() or index == absorb_index:
                keep_masks[index] = mask
                decisions.append(("rebuild", index))
                stats.partitions_rebuilt += 1
            else:
                decisions.append(("drop", index))
                stats.partitions_dropped += 1
        if absorb_index is None:
            tail_chunks = [
                delta_indices[offset : offset + partition_rows]
                for offset in range(0, delta_count, partition_rows)
            ]
        else:
            tail_chunks = []
        stats.tail_partitions_added = len(tail_chunks)

        # Same knob as the parallel scans; the disabled (paper-faithful)
        # configuration keeps the whole merge serial.
        _, scan_workers = self._scan_config()
        merge_workers = scan_workers if scan_workers is not None else 1
        for name, column in zip(table.column_names, columns):
            if isinstance(column, PlainStoredColumn):
                new_parts: list[DictionaryEncodedColumn | None] = []
                rebuild_slots: list[int] = []
                rebuild_values: list[list] = []
                for action, index in decisions:
                    if action == "keep":
                        new_parts.append(column.partitions[index])
                    elif action == "rebuild":
                        mask = keep_masks[index]
                        values = [
                            value
                            for value, keep in zip(
                                column.partitions[index].values(), mask
                            )
                            if keep
                        ]
                        if index == absorb_index:
                            values.extend(
                                column.delta_values[int(i)] for i in delta_indices
                            )
                        new_parts.append(None)
                        rebuild_slots.append(len(new_parts) - 1)
                        rebuild_values.append(values)
                for chunk in tail_chunks:
                    new_parts.append(None)
                    rebuild_slots.append(len(new_parts) - 1)
                    rebuild_values.append(
                        [column.delta_values[int(i)] for i in chunk]
                    )
                for slot, part in zip(
                    rebuild_slots,
                    map_on_build_pool(
                        DictionaryEncodedColumn.from_values,
                        rebuild_values,
                        max_workers=merge_workers,
                    ),
                ):
                    new_parts[slot] = part
                column.partitions = new_parts
                column.delta_values = []
                column.partition_rows = partition_rows
            else:
                if self._host is None:
                    raise QueryError("no enclave available for merge")
                # Untrusted preparation in parallel: surviving blobs of
                # every dirty partition. Reading ciphertext frames needs no
                # enclave and no lock.
                rebuild_indices = [
                    index for action, index in decisions if action == "rebuild"
                ]
                prepared_blobs = dict(
                    zip(
                        rebuild_indices,
                        map_on_build_pool(
                            lambda idx, column=column: column.partition_blobs(
                                idx, keep_masks[idx]
                            ),
                            rebuild_indices,
                            max_workers=merge_workers,
                        ),
                    )
                )
                new_builds = []
                new_ids = []
                for action, index in decisions:
                    if action == "keep":
                        new_builds.append(column.partition_builds[index])
                        new_ids.append(column.partition_ids[index])
                    elif action == "rebuild":
                        blobs = prepared_blobs[index]
                        if index == absorb_index:
                            blobs.extend(
                                column.delta_blobs[int(i)] for i in delta_indices
                            )
                        build = self._host.ecall(
                            "rebuild_for_merge",
                            table.name,
                            name,
                            column.spec.protection,
                            column.spec.value_type,
                            blobs,
                            bsmax=column.spec.bsmax,
                            partition_id=column.partition_ids[index],
                            key_epoch=column.key_epoch,
                        )
                        new_builds.append(build)
                        new_ids.append(column.partition_ids[index])
                for chunk in tail_chunks:
                    partition_id = column.allocate_partition_id()
                    build = self._host.ecall(
                        "rebuild_for_merge",
                        table.name,
                        name,
                        column.spec.protection,
                        column.spec.value_type,
                        [column.delta_blobs[int(i)] for i in chunk],
                        bsmax=column.spec.bsmax,
                        partition_id=partition_id,
                        key_epoch=column.key_epoch,
                    )
                    new_builds.append(build)
                    new_ids.append(partition_id)
                column.set_partitions(new_builds, ids=new_ids)
                column.delta_blobs = []
        table.reset_validity(survivors)
        self.last_merge_stats = stats
        return survivors

"""Attack simulations against the nine encrypted dictionaries.

Both attacks run with *auxiliary knowledge*, the standard setting of the
inference attacks the paper cites ([66] Naveed et al., [41] Grubbs et al.):
the attacker knows the plaintext value distribution of the column (e.g.
from a public dataset) and tries to map dictionary entries to plaintexts.
Accuracy is measured as the fraction of attribute-vector *rows* whose
plaintext the attacker recovers — the white-box ground truth comes from the
test harness, never from the attacker's view.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

from repro.encdict.options import EncryptedDictionaryKind, OrderOption
from repro.encdict.search import DUMMY_RANGE, SearchResult
from repro.security.leakage import frequency_histogram


def frequency_analysis_attack(
    attribute_vector: np.ndarray,
    auxiliary_distribution: dict[Any, int],
    ground_truth: Sequence[Any],
) -> float:
    """Classic frequency analysis: match ValueIDs to plaintexts by rank.

    The attacker sorts the observed ValueIDs by occurrence count and the
    auxiliary plaintexts by expected frequency, pairs them off rank by rank
    (cycling through the auxiliary list if the dictionary is larger, as
    with smoothing/hiding duplicates), and guesses accordingly.

    Returns the fraction of rows guessed correctly. ``ground_truth[vid]``
    is the true plaintext of dictionary entry ``vid``.
    """
    histogram = frequency_histogram(attribute_vector)
    vids_by_count = sorted(histogram, key=lambda vid: -histogram[vid])
    aux_by_frequency = [
        value for value, _ in sorted(auxiliary_distribution.items(), key=lambda kv: -kv[1])
    ]
    if not aux_by_frequency:
        return 0.0
    guesses = {
        vid: aux_by_frequency[rank % len(aux_by_frequency)]
        for rank, vid in enumerate(vids_by_count)
    }
    correct_rows = sum(
        histogram[vid] for vid in vids_by_count if guesses[vid] == ground_truth[vid]
    )
    return correct_rows / len(attribute_vector)


def order_reconstruction_attack(
    kind: EncryptedDictionaryKind,
    attribute_vector: np.ndarray,
    auxiliary_sorted_values: Sequence[Any],
    ground_truth: Sequence[Any],
) -> float:
    """Leakage-abuse order attack: exploit the dictionary arrangement.

    The attacker knows the sorted plaintext domain (with multiplicities
    matching the dictionary construction) and uses the *order option* she
    knows is in place:

    - **sorted**: entry ``i`` is the ``i``-th smallest plaintext — a direct
      read-off.
    - **rotated**: the cyclic order is known but the offset is not; the
      attacker's expected accuracy is the average over all offsets (she can
      only guess uniformly).
    - **unsorted**: no order information; the best strategy is a uniformly
      random assignment, evaluated in expectation.

    Returns the expected fraction of rows recovered.
    """
    n = len(ground_truth)
    if n == 0 or len(attribute_vector) == 0:
        return 0.0
    aux = list(auxiliary_sorted_values)
    if len(aux) != n:
        # Pad/trim the auxiliary knowledge to the dictionary size; rank
        # alignment is the attacker's best effort.
        aux = (aux * (n // len(aux) + 1))[:n] if aux else [None] * n
        aux.sort()
    histogram = frequency_histogram(attribute_vector)
    row_weight = {vid: histogram.get(vid, 0) for vid in range(n)}
    total_rows = len(attribute_vector)

    if kind.order is OrderOption.SORTED:
        correct = sum(
            row_weight[vid] for vid in range(n) if aux[vid] == ground_truth[vid]
        )
        return correct / total_rows

    if kind.order is OrderOption.ROTATED:
        accuracy_sum = 0.0
        for offset in range(n):
            correct = sum(
                row_weight[vid]
                for vid in range(n)
                if aux[(vid - offset) % n] == ground_truth[vid]
            )
            accuracy_sum += correct / total_rows
        return accuracy_sum / n

    # UNSORTED: expectation over a uniformly random bijection aux -> vid.
    # P[entry vid is assigned plaintext p] = multiplicity(p in aux) / n.
    aux_multiplicity = Counter(aux)
    expected_correct = sum(
        row_weight[vid] * aux_multiplicity.get(ground_truth[vid], 0) / n
        for vid in range(n)
    )
    return expected_correct / total_rows


def rotation_boundary_attack(
    observed_results: Sequence[SearchResult], dictionary_size: int
) -> set[int]:
    """Recover the rotated dictionary's secret offset from query results.

    The ValueID ranges returned by ``EnclDictSearch`` are legitimately
    visible to the untrusted server (it runs ``AttrVectSearch`` on them), so
    a passive observer collects them across queries. Every returned
    *contiguous physical range* ``[a, b]`` corresponds to values that are
    contiguous in sorted order, hence the rotation boundary — the physical
    position of the smallest dictionary value, which for the revealing kinds
    equals ``rndOffset`` — cannot lie strictly inside it: all candidates in
    ``[a+1, b]`` are eliminated. Sufficiently many random ranges shrink the
    candidate set to (nearly) a point.

    This is the query-observation erosion of "bounded" order leakage behind
    the MOPE attacks the paper cites for ED2/ED5/ED8 (Table 5, [41, 62]).
    Returns the surviving candidate offsets.
    """
    candidates = set(range(dictionary_size))
    for result in observed_results:
        for low, high in result.ranges:
            if (low, high) == DUMMY_RANGE or low > high:
                continue
            candidates.difference_update(range(low + 1, high + 1))
    return candidates

"""The relative security classification of Figure 6.

``EDX <= EDY`` means EDY provides the same or better security than EDX. The
lattice is the componentwise order on the two leakage dimensions
(frequency, order), each graded none < bounded < full leakage.
"""

from __future__ import annotations

from repro.encdict.options import ALL_KINDS, EncryptedDictionaryKind

#: Numeric leakage grades: higher = more leakage = less secure.
LEVEL_BY_LABEL = {"none": 0, "bounded": 1, "full": 2}


def leakage_profile(kind: EncryptedDictionaryKind) -> tuple[int, int]:
    """``(frequency_leakage, order_leakage)`` grades of one kind."""
    return (
        LEVEL_BY_LABEL[kind.repetition.frequency_leakage],
        LEVEL_BY_LABEL[kind.order.order_leakage],
    )


def no_less_secure(
    stronger: EncryptedDictionaryKind, weaker: EncryptedDictionaryKind
) -> bool:
    """True iff ``weaker <= stronger`` in the Figure 6 sense."""
    strong_frequency, strong_order = leakage_profile(stronger)
    weak_frequency, weak_order = leakage_profile(weaker)
    return strong_frequency <= weak_frequency and strong_order <= weak_order


def security_lattice_edges() -> set[tuple[str, str]]:
    """All direct ``(weaker, stronger)`` edges of Figure 6.

    An edge is emitted when exactly one leakage dimension improves by one
    grade — the covering relation of the product order, which is what the
    figure draws (vertical edges: repetition improves; horizontal edges:
    order improves).
    """
    edges = set()
    for weaker in ALL_KINDS:
        for stronger in ALL_KINDS:
            if weaker is stronger:
                continue
            weak_profile = leakage_profile(weaker)
            strong_profile = leakage_profile(stronger)
            deltas = (
                weak_profile[0] - strong_profile[0],
                weak_profile[1] - strong_profile[1],
            )
            if sorted(deltas) == [0, 1]:
                edges.add((weaker.name, stronger.name))
    return edges

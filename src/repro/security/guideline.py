"""The §6.4 usage guideline as an executable advisor.

The paper closes its evaluation with guidance on choosing an encrypted
dictionary per column. This module codifies that guidance: given the data
owner's security requirements and the column's statistics, it recommends a
kind and explains why — the programmatic counterpart of:

- plaintext acceptable -> no protection;
- weakest acceptable level -> **ED1** (small, almost as fast as PlainDBDB);
- reduce order leakage at minor cost -> **ED2**;
- no order leakage, few uniques, small ranges -> **ED3**;
- bounded frequency leakage at minor cost -> **ED5** ("in many cases the
  best security, latency and storage tradeoff");
- security and latency critical, storage not -> **ED8**;
- security the main objective -> **ED9**.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.encdict.options import (
    ED1,
    ED2,
    ED3,
    ED5,
    ED8,
    ED9,
    EncryptedDictionaryKind,
)


class LeakageTolerance(enum.Enum):
    """How much of one leakage dimension the data owner accepts."""

    FULL = "full leakage acceptable"
    BOUNDED = "bounded leakage acceptable"
    NONE = "no leakage acceptable"


@dataclass(frozen=True)
class ColumnProfile:
    """The statistics §6.4 conditions its advice on."""

    rows: int
    unique_values: int
    typical_range_size: int = 10

    @classmethod
    def from_values(
        cls, values: Sequence, typical_range_size: int = 10
    ) -> "ColumnProfile":
        return cls(
            rows=len(values),
            unique_values=len(Counter(values)),
            typical_range_size=typical_range_size,
        )

    @property
    def unique_ratio(self) -> float:
        return self.unique_values / max(1, self.rows)


@dataclass(frozen=True)
class Recommendation:
    kind: EncryptedDictionaryKind
    rationale: str
    warnings: tuple[str, ...] = ()


def recommend(
    profile: ColumnProfile,
    *,
    order_tolerance: LeakageTolerance,
    frequency_tolerance: LeakageTolerance,
    storage_critical: bool = False,
) -> Recommendation:
    """Apply the §6.4 guideline to one column."""
    warnings: list[str] = []
    low_cardinality = profile.unique_ratio < 0.05 or profile.unique_values < 10_000
    small_ranges = profile.typical_range_size <= 10

    if frequency_tolerance is LeakageTolerance.FULL:
        if order_tolerance is LeakageTolerance.FULL:
            return Recommendation(
                ED1,
                "weakest acceptable level: small storage, almost as fast as "
                "PlainDBDB (§6.4)",
            )
        if order_tolerance is LeakageTolerance.BOUNDED:
            return Recommendation(
                ED2,
                "reduced order leakage for a minor performance overhead over "
                "ED1 (§6.4)",
                tuple(warnings),
            )
        # no order leakage tolerated
        if low_cardinality and small_ranges:
            return Recommendation(
                ED3,
                "no order leakage; practical because the column has few "
                "unique values and ranges are small (§6.4)",
            )
        warnings.append(
            "ED3's linear dictionary scan degrades with many unique values "
            "or large ranges; consider whether bounded order leakage (ED2) "
            "is acceptable"
        )
        return Recommendation(ED3, "no order leakage tolerated", tuple(warnings))

    if frequency_tolerance is LeakageTolerance.BOUNDED:
        if order_tolerance is LeakageTolerance.NONE:
            warnings.append(
                "ED6 pays a heavy latency price (larger linear scan, more "
                "ValueIDs in the attribute-vector pass)"
            )
            from repro.encdict.options import ED6

            return Recommendation(
                ED6, "bounded frequency and no order leakage", tuple(warnings)
            )
        return Recommendation(
            ED5,
            "bounded frequency leakage at minor performance and storage "
            "overhead over ED2 — in many cases the best security, latency "
            "and storage tradeoff (§6.4)",
        )

    # frequency hiding required
    if order_tolerance is LeakageTolerance.NONE:
        warnings.append(
            "ED9 is the most expensive kind: linear scan over a dictionary "
            "as large as the column"
        )
        return Recommendation(
            ED9, "security is the main objective (§6.4)", tuple(warnings)
        )
    if storage_critical:
        warnings.append(
            "frequency hiding stores one encrypted entry per row "
            "(|D| = |AV|); storage-critical columns may prefer ED5"
        )
    if order_tolerance is LeakageTolerance.FULL:
        from repro.encdict.options import ED7

        return Recommendation(
            ED7, "no frequency leakage with the fastest (sorted) search",
            tuple(warnings),
        )
    return Recommendation(
        ED8,
        "security and latency critical, storage size is not (§6.4)",
        tuple(warnings),
    )

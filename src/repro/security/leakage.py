"""Structural leakage measures over the observable ``(eD, AV)`` pair.

Everything here uses only what the honest-but-curious server sees: ValueID
occurrence counts in the attribute vector and the arrangement of the
(opaque) dictionary entries. No keys, no plaintexts.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np


def frequency_histogram(attribute_vector: np.ndarray) -> dict[int, int]:
    """Observed occurrences of each ValueID — the attacker's direct view."""
    counts = Counter(np.asarray(attribute_vector).tolist())
    return dict(counts)


def max_frequency(attribute_vector: np.ndarray) -> int:
    """The largest observed ValueID count.

    For frequency smoothing this is guaranteed to be at most ``bsmax``
    (Table 3); for frequency hiding it is exactly 1.
    """
    histogram = frequency_histogram(attribute_vector)
    return max(histogram.values()) if histogram else 0


def normalized_frequency_entropy(attribute_vector: np.ndarray) -> float:
    """Entropy of the observed ValueID distribution, normalized to [0, 1].

    1.0 means the observed frequencies are perfectly uniform (the attacker
    learns nothing from them, as with frequency hiding); lower values mean
    the histogram is informative.
    """
    histogram = frequency_histogram(attribute_vector)
    total = sum(histogram.values())
    if total == 0 or len(histogram) <= 1:
        return 1.0
    entropy = -sum(
        (count / total) * math.log2(count / total) for count in histogram.values()
    )
    return entropy / math.log2(len(histogram))


def frequency_multiset_distance(
    true_values: Sequence, attribute_vector: np.ndarray
) -> float:
    """Total-variation distance between the *shape* of the true value
    frequency distribution and the observed ValueID distribution.

    0 means the observed histogram reproduces the plaintext histogram
    exactly (full frequency leakage, as with frequency revealing); values
    near the maximum mean the histogram shape was destroyed.
    """
    true_counts = sorted(Counter(true_values).values(), reverse=True)
    observed_counts = sorted(
        frequency_histogram(attribute_vector).values(), reverse=True
    )
    total = float(sum(true_counts))
    length = max(len(true_counts), len(observed_counts))
    true_padded = true_counts + [0] * (length - len(true_counts))
    observed_padded = observed_counts + [0] * (length - len(observed_counts))
    return 0.5 * sum(
        abs(t / total - o / total) for t, o in zip(true_padded, observed_padded)
    )

"""Security evaluation tooling (paper §6.1, Tables 3-5, Figure 6).

The attacker model is the paper's honest-but-curious DBaaS observer: she
sees the encrypted dictionary ``eD`` and the attribute vector ``AV`` of each
column (and knows which encrypted dictionary is in use) but holds no keys.
This package quantifies what such an observer learns:

- :mod:`repro.security.leakage` -- structural leakage measures: observed
  ValueID frequency histograms, the smoothing bound, order-information
  content.
- :mod:`repro.security.attacks` -- concrete attack simulations: frequency
  analysis with auxiliary data (Naveed et al. [66] style) and sorted/rotated
  order reconstruction (leakage-abuse style [41]).
- :mod:`repro.security.classify` -- the relative security lattice of
  Figure 6 and its empirical verification hooks.
"""

from repro.security.attacks import (
    frequency_analysis_attack,
    order_reconstruction_attack,
    rotation_boundary_attack,
)
from repro.security.guideline import (
    ColumnProfile,
    LeakageTolerance,
    Recommendation,
    recommend,
)
from repro.security.classify import (
    LEVEL_BY_LABEL,
    leakage_profile,
    no_less_secure,
    security_lattice_edges,
)
from repro.security.leakage import (
    frequency_histogram,
    max_frequency,
    normalized_frequency_entropy,
)

__all__ = [
    "frequency_histogram",
    "max_frequency",
    "normalized_frequency_entropy",
    "frequency_analysis_attack",
    "order_reconstruction_attack",
    "rotation_boundary_attack",
    "ColumnProfile",
    "LeakageTolerance",
    "Recommendation",
    "recommend",
    "leakage_profile",
    "no_less_secure",
    "security_lattice_edges",
    "LEVEL_BY_LABEL",
]

# lint: allow-file(boundary-import) justification="storage accounting plays the data owner: it builds every ED variant locally to measure Table 6 sizes; it never runs in the server role"
# lint: allow-file(forbidden-symbol) justification="key generation happens in-process because the harness is the data owner for its own builds"
"""Storage accounting regenerating paper Table 6.

For one column, computes the size of:

- the *plaintext file* (all values, no compression),
- the *encrypted file* (every value individually PAE-encrypted, no
  dictionary encoding),
- the MonetDB string column model,
- EncDBDB with ED1-ED3 (one dictionary entry per unique value),
- EncDBDB with ED4-ED6 at several ``bsmax`` values,
- EncDBDB with ED7-ED9 (one entry per row).

Within a repetition option the three order options have identical sizes (a
rotation or shuffle does not change entry counts; the rotated kinds add one
36-byte encrypted offset), so one build per repetition option suffices —
exactly how Table 6 groups its rows.
"""

from __future__ import annotations

from typing import Sequence

from repro.columnstore.monetdb_sim import MonetDBStringColumn
from repro.columnstore.types import ValueType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import PAE_OVERHEAD_BYTES, Pae, default_pae, pae_gen
from repro.encdict.builder import encdb_build
from repro.encdict.options import ED1, ED4, ED7, EncryptedDictionaryKind


def plaintext_file_bytes(values: Sequence[str], value_type: ValueType) -> int:
    """All values back to back, uncompressed (Table 6 'Plaintext file')."""
    return sum(len(value_type.to_bytes(value)) for value in values)


def encrypted_file_bytes(values: Sequence[str], value_type: ValueType) -> int:
    """Every value individually PAE-encrypted (Table 6 'Encrypted file')."""
    return plaintext_file_bytes(values, value_type) + PAE_OVERHEAD_BYTES * len(values)


def encdbdb_column_bytes(
    values: Sequence[str],
    kind: EncryptedDictionaryKind,
    *,
    value_type: ValueType,
    bsmax: int,
    pae: Pae,
    rng: HmacDrbg,
) -> int:
    """Dictionary head + tail + packed attribute vector for one kind."""
    key = pae_gen(rng=rng.fork("key"))
    build = encdb_build(
        list(values),
        kind,
        value_type=value_type,
        key=key,
        pae=pae,
        rng=rng.fork("build"),
        bsmax=bsmax,
    )
    dictionary = build.dictionary
    return dictionary.storage_bytes() + dictionary.attribute_vector_bytes(
        len(build.attribute_vector)
    )


def storage_table_for_column(
    values: Sequence[str],
    *,
    string_length: int,
    bsmax_values: Sequence[int] = (100, 10, 2),
    seed: bytes = b"storage-bench",
) -> dict[str, int]:
    """All Table 6 rows for one column, in bytes."""
    rng = HmacDrbg(seed)
    pae = default_pae(rng=rng.fork("pae"))
    value_type = VarcharType(string_length)
    table: dict[str, int] = {
        "Plaintext file": plaintext_file_bytes(values, value_type),
        "Encrypted file": encrypted_file_bytes(values, value_type),
        "MonetDB": MonetDBStringColumn(values).storage_bytes(),
        "ED1/ED2/ED3": encdbdb_column_bytes(
            values, ED1, value_type=value_type, bsmax=1, pae=pae,
            rng=rng.fork("revealing"),
        ),
    }
    for bsmax in bsmax_values:
        table[f"ED4/ED5/ED6, bsmax={bsmax}"] = encdbdb_column_bytes(
            values, ED4, value_type=value_type, bsmax=bsmax, pae=pae,
            rng=rng.fork(f"smoothing-{bsmax}"),
        )
    table["ED7/ED8/ED9"] = encdbdb_column_bytes(
        values, ED7, value_type=value_type, bsmax=1, pae=pae, rng=rng.fork("hiding")
    )
    return table

"""Latency measurement with the paper's reporting conventions.

The paper reports the average latency of 500 random range queries with a
95% confidence interval, measured at the server excluding network and proxy
time. ``measure_query_latency`` does the same (with a configurable query
count so CI-scale runs stay fast); :class:`BenchSettings` centralizes the
environment-variable scaling knobs.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.workloads.queries import RangeQuery


@dataclass(frozen=True)
class BenchSettings:
    """Scaling knobs, overridable via environment variables.

    - ``ENCDBDB_BENCH_ROWS``: rows per generated column (default 20 000;
      the paper's full datasets are 10.9 M — pass e.g. 10900000 for a
      full-scale run).
    - ``ENCDBDB_BENCH_QUERIES``: random queries per cell (default 25;
      paper: 500).
    - ``ENCDBDB_BENCH_SIZES``: dataset-size steps for the Figure 8 x-axis
      (default 3; paper: 10).
    """

    rows: int = 20_000
    queries: int = 25
    size_steps: int = 3

    @classmethod
    def from_env(cls) -> "BenchSettings":
        return cls(
            rows=int(os.environ.get("ENCDBDB_BENCH_ROWS", cls.rows)),
            queries=int(os.environ.get("ENCDBDB_BENCH_QUERIES", cls.queries)),
            size_steps=int(os.environ.get("ENCDBDB_BENCH_SIZES", cls.size_steps)),
        )


@dataclass(frozen=True)
class LatencyStats:
    """Mean latency with a 95% confidence interval, in seconds."""

    mean: float
    ci95: float
    count: int
    total_results: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def ci95_ms(self) -> float:
        return self.ci95 * 1e3

    def __str__(self) -> str:
        return f"{self.mean_ms:9.3f} ms ±{self.ci95_ms:7.3f}"


def latency_stats(samples: Sequence[float], total_results: int = 0) -> LatencyStats:
    """Mean and normal-approximation 95% CI of latency samples."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
        ci95 = 1.96 * math.sqrt(variance / n)
    else:
        ci95 = 0.0
    return LatencyStats(mean=mean, ci95=ci95, count=n, total_results=total_results)


def measure_query_latency(
    run: Callable[[RangeQuery], int], queries: Sequence[RangeQuery]
) -> LatencyStats:
    """Time each query individually; returns aggregate statistics."""
    samples = []
    total_results = 0
    for query in queries:
        start = time.perf_counter()
        result_count = run(query)
        samples.append(time.perf_counter() - start)
        total_results += int(result_count)
    return latency_stats(samples, total_results)

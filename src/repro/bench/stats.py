"""Host and dispatch context captured alongside benchmark numbers (PR 6).

A speedup ratio without the host it was measured on is unreadable: the
0.82x "parallel speedup" that motivated adaptive dispatch only made sense
next to ``cores: 1``. :class:`BenchStats` bundles the facts every
``BENCH_*.json`` payload should carry — detected cores, the configured
worker knob, whether adaptive dispatch is active, and the per-kind
serial/parallel decisions the runtime actually made during the run — so
regression guards can be conditioned on the host instead of skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime import (
    adaptive_dispatch_enabled,
    configured_workers,
    detected_cores,
    dispatch_stats,
)

__all__ = ["BenchStats"]


@dataclass(frozen=True)
class BenchStats:
    """A snapshot of the runtime's execution-strategy state."""

    cores: int
    workers: int
    adaptive: bool
    dispatch: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def capture(cls) -> "BenchStats":
        """Snapshot the current host facts and dispatch log."""
        return cls(
            cores=detected_cores(),
            workers=configured_workers(),
            adaptive=adaptive_dispatch_enabled(),
            dispatch=dispatch_stats(),
        )

    def to_dict(self) -> dict:
        """JSON-ready shape for ``BENCH_*.json`` payloads."""
        return {
            "cores": self.cores,
            "workers": self.workers,
            "adaptive": self.adaptive,
            "dispatch": self.dispatch,
        }

"""Measurement harness backing the ``benchmarks/`` tree.

Provides the three engines of the paper's Figure 8 comparison (MonetDB
model, PlainDBDB, EncDBDB) behind one interface, latency statistics with
95% confidence intervals, the Table 6 storage accounting, and plain-text
report rendering used to regenerate every table/figure of the evaluation.
"""

from repro.bench.engines import (
    EncDbdbColumnEngine,
    MonetDbColumnEngine,
    PlainDbdbColumnEngine,
    build_engines,
)
from repro.bench.harness import BenchSettings, LatencyStats, measure_query_latency
from repro.bench.stats import BenchStats
from repro.bench.storage import storage_table_for_column
from repro.bench.report import format_table

__all__ = [
    "BenchStats",
    "MonetDbColumnEngine",
    "PlainDbdbColumnEngine",
    "EncDbdbColumnEngine",
    "build_engines",
    "BenchSettings",
    "LatencyStats",
    "measure_query_latency",
    "storage_table_for_column",
    "format_table",
]

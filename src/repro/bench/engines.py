# lint: allow-file(boundary-import) justification="the benchmark harness drives every deployment role in-process: it is the data owner (key generation, builds), the proxy (query encryption), and the DBMS host at once, mirroring the paper's single-machine evaluation"
# lint: allow-file(forbidden-symbol) justification="as the in-process data owner the harness generates SKDB-equivalent keys and derives column keys; none of this code ships in the server role"
"""The three engines compared in the paper's performance evaluation (§6.3).

All three answer the same range queries over the same column:

- :class:`MonetDbColumnEngine` — the plaintext commercial baseline with its
  insertion-ordered string dictionary and linear string-comparison scan.
- :class:`PlainDbdbColumnEngine` — PlainDBDB: EncDBDB's algorithms and
  layout, plaintext dictionaries, no enclave.
- :class:`EncDbdbColumnEngine` — the full system: PAE-encrypted dictionary,
  dictionary search inside the (simulated) enclave, untrusted attribute-
  vector search, and tuple reconstruction of the result column.

Latency is measured end to end per query, including tuple reconstruction
(the paper's observation that many results make C2 slower than C1 hinges on
that step).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.columnstore.monetdb_sim import MonetDBStringColumn
from repro.columnstore.types import ValueType, VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import Pae, default_pae, pae_gen
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.builder import BuildResult, encdb_build
from repro.encdict.enclave_app import EncDBDBEnclave, encrypt_search_range
from repro.encdict.options import EncryptedDictionaryKind
from repro.encdict.search import OrdinalRange, plain_search
from repro.sgx.attestation import AttestationService
from repro.sgx.channel import SecureChannel
from repro.sgx.enclave import EnclaveHost
from repro.workloads.queries import RangeQuery


def _materialize_entries(build: BuildResult) -> np.ndarray:
    """Dictionary blobs as an object array for vectorized reconstruction.

    All three engines materialize result columns through one numpy
    fancy-indexing step, so the latency comparison reflects the search
    algorithms (the paper's point) rather than Python loop overhead.
    """
    dictionary = build.dictionary
    blobs = np.empty(len(dictionary), dtype=object)
    for index in range(len(dictionary)):
        blobs[index] = dictionary.entry(index)
    return blobs


class MonetDbColumnEngine:
    """Plaintext MonetDB baseline."""

    name = "MonetDB"

    def __init__(self, values: Sequence[str]) -> None:
        self._column = MonetDBStringColumn(values)

    def run(self, query: RangeQuery) -> int:
        record_ids = self._column.range_search(query.low, query.high)
        # Tuple reconstruction: materialize the result column.
        result = self._column._row_values[record_ids]
        return len(result)

    def storage_bytes(self) -> int:
        return self._column.storage_bytes()


class PlainDbdbColumnEngine:
    """PlainDBDB: same algorithms as EncDBDB, plaintext, no enclave."""

    name = "PlainDBDB"

    def __init__(
        self,
        values: Sequence[str],
        kind: EncryptedDictionaryKind,
        *,
        value_type: ValueType | None = None,
        bsmax: int = 10,
        rng: HmacDrbg | None = None,
    ) -> None:
        rng = rng if rng is not None else HmacDrbg(b"plaindbdb")
        self._value_type = value_type or VarcharType(30)
        self.build: BuildResult = encdb_build(
            list(values),
            kind,
            value_type=self._value_type,
            key=None,
            pae=None,
            rng=rng,
            bsmax=bsmax,
            encrypted=False,
        )

        self._entry_blobs = _materialize_entries(self.build)

    def run(self, query: RangeQuery) -> int:
        search = OrdinalRange(
            self._value_type.ordinal(query.low), self._value_type.ordinal(query.high)
        )
        result = plain_search(self.build.dictionary, search)
        record_ids = attr_vect_search(self.build.attribute_vector, result)
        reconstructed = self._entry_blobs[self.build.attribute_vector[record_ids]]
        return len(reconstructed)

    def storage_bytes(self) -> int:
        dictionary = self.build.dictionary
        return dictionary.storage_bytes() + dictionary.attribute_vector_bytes(
            len(self.build.attribute_vector)
        )


class EncDbdbColumnEngine:
    """The full encrypted pipeline through the simulated enclave."""

    name = "EncDBDB"

    def __init__(
        self,
        values: Sequence[str],
        kind: EncryptedDictionaryKind,
        *,
        value_type: ValueType | None = None,
        bsmax: int = 10,
        rng: HmacDrbg | None = None,
        pae: Pae | None = None,
        table_name: str = "bench",
        column_name: str = "col",
        fastpath=None,
    ) -> None:
        rng = rng if rng is not None else HmacDrbg(b"encdbdb-engine")
        self._pae = pae if pae is not None else default_pae(rng=rng.fork("pae"))
        self._value_type = value_type or VarcharType(30)
        self._master_key = pae_gen(rng=rng.fork("skdb"))
        self._column_key = derive_column_key(self._master_key, table_name, column_name)

        attestation = AttestationService()
        # Default None keeps the paper-faithful slow path, so the Figure 8
        # comparisons stay measurements of the published algorithms; the
        # fast-path benchmark passes an explicit FastPathConfig.
        enclave = EncDBDBEnclave(
            attestation=attestation,
            pae=self._pae,
            rng=rng.fork("enclave"),
            fastpath=fastpath,
        )
        self.host = EnclaveHost(enclave)
        offer = self.host.ecall("channel_offer")
        channel, public = SecureChannel.connect(
            offer, attestation, self.host.measurement, rng=rng.fork("owner"),
            pae=self._pae,
        )
        self.host.ecall("channel_accept", public)
        self.host.ecall("provision_master_key", channel.send(self._master_key))

        self.build: BuildResult = encdb_build(
            list(values),
            kind,
            value_type=self._value_type,
            key=self._column_key,
            pae=self._pae,
            rng=rng.fork("build"),
            bsmax=bsmax,
            table_name=table_name,
            column_name=column_name,
        )

        self._entry_blobs = _materialize_entries(self.build)

    def run(self, query: RangeQuery) -> int:
        tau = encrypt_search_range(
            self._pae,
            self._column_key,
            OrdinalRange(
                self._value_type.ordinal(query.low),
                self._value_type.ordinal(query.high),
            ),
        )
        result = self.host.ecall("dict_search", self.build.dictionary, tau)
        record_ids = attr_vect_search(
            self.build.attribute_vector, result, cost_model=self.host.cost_model
        )
        reconstructed = self._entry_blobs[self.build.attribute_vector[record_ids]]
        return len(reconstructed)

    def storage_bytes(self) -> int:
        dictionary = self.build.dictionary
        return dictionary.storage_bytes() + dictionary.attribute_vector_bytes(
            len(self.build.attribute_vector)
        )


def build_engines(
    values: Sequence[str],
    kind: EncryptedDictionaryKind,
    *,
    bsmax: int = 10,
    value_type: ValueType | None = None,
    seed: bytes = b"bench-engines",
):
    """Construct all three engines over the same column."""
    rng = HmacDrbg(seed)
    return {
        "MonetDB": MonetDbColumnEngine(values),
        "PlainDBDB": PlainDbdbColumnEngine(
            values, kind, value_type=value_type, bsmax=bsmax, rng=rng.fork("plain")
        ),
        "EncDBDB": EncDbdbColumnEngine(
            values, kind, value_type=value_type, bsmax=bsmax, rng=rng.fork("enc")
        ),
    }

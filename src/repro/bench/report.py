"""Plain-text rendering of the regenerated tables and figures."""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence], *, indent: str = "  "
) -> str:
    """Render an aligned text table with a title line."""
    columns = len(headers)
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(columns)
    ]
    lines = [title]
    lines.append(
        indent + "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append(indent + "  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_bytes(size: int) -> str:
    """Human-readable size: keeps comparisons across rows obvious."""
    if size >= 1024 * 1024:
        return f"{size / (1024 * 1024):8.2f} MiB"
    if size >= 1024:
        return f"{size / 1024:8.2f} KiB"
    return f"{size:8d} B"

"""The DBaaS-provider side of EncDBDB: DBMS + enclave."""

from repro.server.dbms import EncDBDBServer

__all__ = ["EncDBDBServer"]

"""The EncDBDB server: untrusted DBMS hosting a small trusted enclave.

Everything in this module is *untrusted* (it runs at the DBaaS provider):
catalog, storage, planner-output execution, result rendering. The only
trusted component is the :class:`~repro.encdict.enclave_app.EncDBDBEnclave`
reached through its :class:`~repro.sgx.enclave.EnclaveHost`. The server
never sees plaintext values of encrypted columns, the master key, or a
rotation offset — tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.columnstore.catalog import Catalog
from repro.columnstore.column import EncryptedStoredColumn, PlainStoredColumn
from repro.columnstore.partition import slice_rows
from repro.columnstore.storage import load_database, save_database
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import Pae, default_pae
from repro.encdict.builder import BuildResult
from repro.encdict.enclave_app import EncDBDBEnclave
from repro.exceptions import CatalogError, QueryError
from repro.migrate import MigrationManager
from repro.migrate.plan import MigrationStatus
from repro.sgx.attestation import AttestationService
from repro.sgx.cache import FastPathConfig
from repro.sgx.enclave import EnclaveHost
from repro.sql.executor import Executor
from repro.sql.planner import (
    CreatePlan,
    DeletePlan,
    JoinSelectPlan,
    MergePlan,
    SelectPlan,
)
from repro.sql.result import ServerResult

if TYPE_CHECKING:  # the stream item type lives owner-side; only needed for
    # annotations — the server treats arriving partitions as opaque builds.
    from repro.encdict.pipeline import PartitionBuild


class EncDBDBServer:
    """One DBaaS deployment: catalog + executor + loaded enclave."""

    def __init__(
        self,
        *,
        attestation: AttestationService | None = None,
        pae: Pae | None = None,
        rng: HmacDrbg | None = None,
        fastpath: FastPathConfig | None = None,
        scan_workers: int | None = None,
    ) -> None:
        rng = rng if rng is not None else HmacDrbg(b"encdbdb-server")
        self.attestation = attestation if attestation is not None else AttestationService()
        self.catalog = Catalog()
        # Production deployments run the query fast path (PR 1) by default;
        # pass FastPathConfig.disabled() for the paper-faithful baseline.
        # ``scan_workers`` overrides the worker fan-out of the chunked
        # attribute-vector scans (and, through the same knob, the parallel
        # merge preparation) without spelling out a whole FastPathConfig.
        self.fastpath = fastpath if fastpath is not None else FastPathConfig()
        if scan_workers is not None:
            self.fastpath = replace(
                self.fastpath, scan_max_workers=max(1, int(scan_workers))
            )
        self._enclave = EncDBDBEnclave(
            attestation=self.attestation,
            pae=pae if pae is not None else default_pae(rng=rng.fork("enclave-pae")),
            rng=rng.fork("enclave"),
            fastpath=self.fastpath,
        )
        self.enclave_host = EnclaveHost(self._enclave)
        self.executor = Executor(self.catalog, self.enclave_host, fastpath=self.fastpath)
        self.migrations = MigrationManager(
            self.catalog, self.enclave_host, salt_rng=rng.fork("migration-salts")
        )

    # ------------------------------------------------------------------
    # Enclave surface exposed to the network (provisioning passthrough)
    # ------------------------------------------------------------------
    @property
    def measurement(self) -> bytes:
        return self.enclave_host.measurement

    @property
    def cost_model(self):
        return self.enclave_host.cost_model

    def enclave_channel_offer(self):
        return self.enclave_host.ecall("channel_offer")

    def enclave_channel_accept(self, client_public: int) -> None:
        self.enclave_host.ecall("channel_accept", client_public)

    def enclave_provision(self, wire_blob: bytes) -> None:
        self.enclave_host.ecall("provision_master_key", wire_blob)

    def enclave_is_provisioned(self) -> bool:
        return self.enclave_host.ecall("is_provisioned")

    def enclave_replicate_key(self, offer) -> tuple:
        """Primary side of cluster key replication: wrap ``SKDB`` for the
        attested replica enclave whose channel offer is relayed in."""
        return self.enclave_host.ecall("replicate_master_key", offer)

    def enclave_seal(self) -> bytes:
        """Seal ``SKDB`` to the enclave identity (restart persistence)."""
        return self.enclave_host.ecall("seal_master_key")

    def enclave_restore(self, sealed_blob: bytes) -> None:
        """Restore ``SKDB`` from a sealed blob without re-attestation."""
        self.enclave_host.ecall("restore_master_key", sealed_blob)

    # ------------------------------------------------------------------
    # Introspection for remote clients (schema mirror sync, accounting)
    # ------------------------------------------------------------------
    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def table_specs(self, table_name: str) -> tuple:
        return tuple(self.catalog.table(table_name).specs)

    def cost_snapshot(self) -> dict:
        """Cost-model counters plus derived totals, as one plain dict."""
        snapshot = self.cost_model.snapshot()
        snapshot["ecalls_by_name"] = dict(self.cost_model.ecalls_by_name)
        snapshot["estimated_cycles"] = self.cost_model.estimated_cycles()
        return snapshot

    # ------------------------------------------------------------------
    # DDL and bulk import (paper §4.2 steps 3-4)
    # ------------------------------------------------------------------
    def create_table(self, plan: CreatePlan) -> None:
        table = self.catalog.create_table(plan.table, plan.specs)
        columns = {}
        for spec in plan.specs:
            if spec.is_encrypted:
                column = EncryptedStoredColumn(spec, None)
                column.bind(table.name)
                columns[spec.name] = column
            else:
                columns[spec.name] = PlainStoredColumn(spec)
        table.attach_columns(columns, 0)

    def bulk_load(
        self,
        table_name: str,
        *,
        plain_columns: dict[str, list] | None = None,
        encrypted_builds: dict[str, BuildResult | list[BuildResult]] | None = None,
    ) -> int:
        """Import a prepared dataset (the data owner's ``EncDB`` output).

        An encrypted column may arrive as one build (single partition) or a
        list of per-partition builds. All columns of a table must share one
        partition layout — the per-partition row counts of the encrypted
        builds are the template, and plain columns are sliced to match so
        global RecordIDs stay row-aligned across columns.
        """
        table = self.catalog.table(table_name)
        if table.row_count:
            raise CatalogError(f"table {table_name!r} already holds data")
        plain_columns = plain_columns or {}
        encrypted_builds = encrypted_builds or {}
        build_lists: dict[str, list[BuildResult]] = {
            name: list(build) if isinstance(build, (list, tuple)) else [build]
            for name, build in encrypted_builds.items()
        }
        provided = set(plain_columns) | set(build_lists)
        if provided != set(table.column_names):
            raise CatalogError(
                f"bulk load must cover exactly the columns of {table_name!r}"
            )
        # One partition layout for the whole table, taken from the encrypted
        # builds (they cannot be re-chunked without the enclave).
        layouts = {
            name: [len(build.attribute_vector) for build in builds]
            for name, builds in build_lists.items()
        }
        if len({tuple(layout) for layout in layouts.values()}) > 1:
            raise CatalogError(
                "encrypted columns have mismatched partition layouts"
            )
        template = next(iter(layouts.values()), None)
        lengths = {len(v) for v in plain_columns.values()} | {
            sum(layout) for layout in layouts.values()
        }
        if len(lengths) != 1:
            raise CatalogError("bulk-loaded columns have inconsistent lengths")
        (row_count,) = lengths

        columns = {}
        for name, values in plain_columns.items():
            spec = table.spec(name)
            if spec.is_encrypted:
                raise CatalogError(f"column {name!r} requires an encrypted build")
            if template is not None:
                column = PlainStoredColumn(spec)
                column.set_partition_values(slice_rows(list(values), template))
            else:
                column = PlainStoredColumn(spec, values)
            columns[name] = column
        for name, builds in build_lists.items():
            spec = table.spec(name)
            if not spec.is_encrypted:
                raise CatalogError(f"column {name!r} is not encrypted")
            for build in builds:
                if build.dictionary.kind != spec.protection:
                    raise CatalogError(
                        f"column {name!r} was built as "
                        f"{build.dictionary.kind} but is declared {spec.protection}"
                    )
            column = EncryptedStoredColumn(spec, builds)
            column.bind(table.name)
            columns[name] = column
        table.attach_columns(columns, row_count)
        if template:
            table.partition_rows = max(template)
        return row_count

    def bulk_load_stream(
        self, table_name: str, partitions: "Iterable[PartitionBuild]"
    ) -> int:
        """Import a table from a stream of completed partitions.

        ``partitions`` yields :class:`~repro.encdict.pipeline.PartitionBuild`
        items in partition order — typically straight out of the data
        owner's :meth:`~repro.encdict.pipeline.BuildPipeline.build_stream` —
        and each is installed into the column store as it arrives, while the
        owner is still building later partitions. The resulting catalog
        state is identical to a :meth:`bulk_load` of the collected builds;
        only the peak transient memory differs (O(partition), not O(table)).
        """
        table = self.catalog.table(table_name)
        if table.row_count:
            raise CatalogError(f"table {table_name!r} already holds data")
        expected = set(table.column_names)
        columns: dict[str, PlainStoredColumn | EncryptedStoredColumn] = {}
        for spec in table.specs:
            if spec.is_encrypted:
                column = EncryptedStoredColumn(spec, None)
                column.bind(table.name)
            else:
                column = PlainStoredColumn(spec)
            columns[spec.name] = column
        row_count = 0
        largest_partition = 0
        partition_count = 0
        for partition in partitions:
            provided = set(partition.builds) | set(partition.plain_values)
            if provided != expected:
                raise CatalogError(
                    f"bulk load must cover exactly the columns of {table_name!r}"
                )
            lengths = {
                len(build.attribute_vector)
                for build in partition.builds.values()
            } | {len(values) for values in partition.plain_values.values()}
            if len(lengths) != 1:
                raise CatalogError(
                    f"partition {partition_count} of {table_name!r} has "
                    "columns of inconsistent lengths"
                )
            for name, build in partition.builds.items():
                spec = table.spec(name)
                if not spec.is_encrypted:
                    raise CatalogError(f"column {name!r} is not encrypted")
                if build.dictionary.kind != spec.protection:
                    raise CatalogError(
                        f"column {name!r} was built as "
                        f"{build.dictionary.kind} but is declared {spec.protection}"
                    )
                columns[name].append_partition(build)
            for name, values in partition.plain_values.items():
                spec = table.spec(name)
                if spec.is_encrypted:
                    raise CatalogError(
                        f"column {name!r} requires an encrypted build"
                    )
                columns[name].append_partition_values(values)
            (partition_rows,) = lengths
            row_count += partition_rows
            largest_partition = max(largest_partition, partition_rows)
            partition_count += 1
        if partition_count == 0:
            raise CatalogError("bulk load stream produced no partitions")
        table.attach_columns(columns, row_count)
        table.partition_rows = largest_partition
        return row_count

    def drop_table(self, table_name: str) -> None:
        self.catalog.drop_table(table_name)

    # ------------------------------------------------------------------
    # Query execution (proxy-facing)
    # ------------------------------------------------------------------
    def execute_select(self, plan: SelectPlan) -> ServerResult:
        return self.executor.select(plan)

    def execute_select_pushdown(self, plan: SelectPlan):
        """SELECT through the cost-based analytics pushdown router (PR 9).

        Returns a :class:`~repro.sql.result.PushdownSelectResult`: routing
        decisions plus either padded aggregate frames or the usual row
        payload. The plain :meth:`execute_select` path is untouched and
        remains the correctness oracle.
        """
        return self.executor.select_pushdown(plan)

    def explain_pushdown(self, plan) -> tuple:
        """EXPLAIN hook: the routing decisions the pushdown router would
        make for this plan (structural facts + static cost estimate)."""
        from repro.sql.result import RoutingDecision

        if isinstance(plan, JoinSelectPlan):
            if plan.post.has_aggregates or plan.post.order_by:
                return (
                    RoutingDecision(
                        "aggregate" if plan.post.has_aggregates else "order-by",
                        False,
                        "join query: pushdown is single-table, proxy-side",
                    ),
                )
            return ()
        if not isinstance(plan, SelectPlan):
            return ()
        return self.executor.explain_pushdown(plan)

    def execute_join_select(self, plan: JoinSelectPlan, salt: bytes) -> ServerResult:
        return self.executor.select_join(plan, salt)

    def execute_insert(self, table_name: str, prepared_rows: list[dict]) -> int:
        inserted = self.executor.insert_prepared(table_name, prepared_rows)
        self._maybe_auto_merge(table_name)
        return inserted

    def execute_delete(self, plan: DeletePlan) -> int:
        deleted = self.executor.delete(plan)
        self._maybe_auto_merge(plan.table)
        return deleted

    def delete_record_ids(self, table_name: str, record_ids) -> int:
        """Targeted delete by RecordID (used by the proxy's UPDATE flow)."""
        table = self.catalog.table(table_name)
        return table.delete_rows(np.asarray(record_ids, dtype=np.int64))

    # ------------------------------------------------------------------
    # Automatic delta merging (paper §4.3, Hübner et al. strategies)
    # ------------------------------------------------------------------
    def enable_auto_merge(self, policy) -> None:
        """Install a :class:`~repro.columnstore.merge_policy.MergePolicy`;
        the server then merges tables whose delta stores grew past it."""
        self._merge_policy = policy

    def disable_auto_merge(self) -> None:
        self._merge_policy = None

    def _maybe_auto_merge(self, table_name: str) -> None:
        policy = getattr(self, "_merge_policy", None)
        if policy is None:
            return
        if table_name in self.migrations.active_tables():
            # A merge rebuilds the partition layout out from under the
            # rotation's dual-version slots; the policy simply retries after
            # the migration finishes or rolls back.
            return
        table = self.catalog.table(table_name)
        if policy.should_merge(table):
            self.executor.merge(MergePlan(table_name))

    def execute_merge(self, plan: MergePlan) -> int:
        if plan.table in self.migrations.active_tables():
            raise QueryError(
                f"table {plan.table!r} has a rotation in flight; "
                "finish or roll back the migration before merging"
            )
        return self.executor.merge(plan)

    # ------------------------------------------------------------------
    # Online rotation (repro.migrate)
    # ------------------------------------------------------------------
    def migrate_start(
        self,
        table_name: str,
        column_name: str,
        *,
        new_kind: str | None = None,
        rotate_key: bool = False,
    ) -> MigrationStatus:
        return self.migrations.start(
            table_name, column_name, new_kind=new_kind, rotate_key=rotate_key
        )

    def migrate_step(
        self, table_name: str, column_name: str, steps: int = 1
    ) -> MigrationStatus:
        return self.migrations.step(table_name, column_name, steps)

    def migrate_run(self, table_name: str, column_name: str) -> MigrationStatus:
        return self.migrations.run(table_name, column_name)

    def migrate_status(
        self, table_name: str | None = None, column_name: str | None = None
    ) -> list[MigrationStatus]:
        return self.migrations.status(table_name, column_name)

    def migrate_rollback(
        self, table_name: str, column_name: str
    ) -> MigrationStatus:
        return self.migrations.rollback(table_name, column_name)

    def explain_migrations(self, plan) -> list[MigrationStatus]:
        """EXPLAIN hook: active rotations touching the plan's table(s)."""
        tables = {getattr(plan, "table", None), getattr(plan, "left_table", None),
                  getattr(plan, "right_table", None)}
        return [
            status
            for status in self.migrations.status()
            if status.active and status.table in tables
        ]

    # ------------------------------------------------------------------
    # Persistence (the storage-management box of Figure 5)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        if self.migrations.any_active:
            # The storage format records one kind and one epoch per column;
            # a half-swapped column has neither, so persisting mid-rotation
            # could resurrect into an unservable state.
            raise QueryError(
                "cannot save while a migration is in flight; "
                "finish or roll it back first"
            )
        save_database(self.catalog, path)

    def load(self, path: str | Path) -> None:
        loaded = load_database(path)
        if self.catalog.table_names():
            raise QueryError("load() requires an empty server catalog")
        self.catalog = loaded
        self.executor = Executor(self.catalog, self.enclave_host, fastpath=self.fastpath)
        self.migrations = MigrationManager(
            self.catalog, self.enclave_host, salt_rng=self.migrations._salt_rng
        )

"""Exception hierarchy shared by the whole EncDBDB reproduction.

All errors raised by this package derive from :class:`EncDBDBError` so callers
can catch one base class. Subsystems raise the most specific subclass that
applies; messages never contain plaintext values from encrypted columns.
"""

from __future__ import annotations


class EncDBDBError(Exception):
    """Base class of every error raised by the ``repro`` package."""


class CryptoError(EncDBDBError):
    """A cryptographic operation failed (bad key sizes, malformed input...)."""


class AuthenticationError(CryptoError):
    """Authenticated decryption failed: the ciphertext or tag was tampered."""


class EnclaveSecurityError(EncDBDBError):
    """The simulated SGX trust boundary was violated.

    Raised, for example, when untrusted code tries to read enclave memory
    directly, call an unregistered ecall, or provision a key without a
    successfully attested secure channel.
    """


class AttestationError(EnclaveSecurityError):
    """Remote attestation failed: quote signature or measurement mismatch."""


class EnclaveMemoryError(EnclaveSecurityError):
    """The EPC model rejected an allocation (over the usable-EPC budget)."""


class StorageError(EncDBDBError):
    """Persistence-layer failure (corrupt file, unknown format version...)."""


class NetworkError(EncDBDBError):
    """Client/server transport failure (connection refused, capacity, EOF)."""


class ProtocolError(NetworkError):
    """A wire frame violated the ``repro.net`` protocol (bad magic, version
    mismatch, malformed payload, oversized frame, unregistered type)."""


class ServerBusyError(NetworkError):
    """The server declined the request because a bounded resource is
    exhausted right now (admission control, the provisioning slot). The
    condition is transient by construction, so clients may retry with
    backoff where the request is idempotent."""


class ClusterError(NetworkError):
    """A cluster operation failed across every candidate endpoint (all
    replicas of a shard down, topology misconfigured, unsupported
    cross-shard operation)."""


class CatalogError(EncDBDBError):
    """Schema-level failure: unknown/duplicate table or column, bad type."""


class QueryError(EncDBDBError):
    """A query could not be parsed, planned, or executed."""


class SqlSyntaxError(QueryError):
    """The SQL text is not part of the supported grammar."""


class PlanError(QueryError):
    """The planner could not produce an executable plan for a valid AST."""


class MigrationError(QueryError):
    """An online rotation could not be planned, advanced, or rolled back
    (bad target kind/epoch, a rotation already in flight, verification
    mismatch, rollback of a finalized migration)."""

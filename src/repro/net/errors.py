"""Redaction of server-side failures into typed wire error frames.

Execution errors at the DBaaS provider must reach the remote proxy as
actionable, *typed* exceptions — but the wire is observed by the network
attacker, and an unredacted exception can carry stack traces (code layout,
file paths) or even value material (a ``ValueError`` interpolating its
argument). The policy here:

- only the exception **type name** and **message** ever cross the wire —
  never a traceback;
- only :class:`~repro.exceptions.EncDBDBError` subclasses keep their message
  (the package-wide contract is that those messages never contain plaintext
  of encrypted columns); the type is mapped to the nearest registered base;
- any other exception is collapsed to a generic "internal server error"
  with no detail at all;
- messages are additionally scrubbed of byte-literal reprs and truncated,
  as defense in depth against a message that embeds raw blobs.
"""

from __future__ import annotations

import re

from repro import exceptions
from repro.exceptions import EncDBDBError

#: Exception types allowed to cross the wire by name. The client maps the
#: name back to the same class, so ``except CatalogError:`` works identically
#: for in-process and remote deployments.
WIRE_SAFE_EXCEPTIONS: dict[str, type[EncDBDBError]] = {
    cls.__name__: cls
    for cls in (
        exceptions.EncDBDBError,
        exceptions.CryptoError,
        exceptions.AuthenticationError,
        exceptions.EnclaveSecurityError,
        exceptions.AttestationError,
        exceptions.EnclaveMemoryError,
        exceptions.StorageError,
        exceptions.CatalogError,
        exceptions.QueryError,
        exceptions.SqlSyntaxError,
        exceptions.PlanError,
        exceptions.MigrationError,
        exceptions.NetworkError,
        exceptions.ProtocolError,
        exceptions.ServerBusyError,
        exceptions.ClusterError,
    )
}

REDACTED_MESSAGE = "internal server error (details redacted)"

_MAX_MESSAGE_CHARS = 500
_BYTES_REPR = re.compile(r"(?:b|bytearray\()['\"][^'\"]*['\"]\)?")
_HEX_BLOB = re.compile(r"\b[0-9a-fA-F]{32,}\b")


def scrub_message(message: str) -> str:
    """Strip byte-literal reprs and long hex runs; bound the length."""
    message = _BYTES_REPR.sub("<bytes>", message)
    message = _HEX_BLOB.sub("<hex>", message)
    if len(message) > _MAX_MESSAGE_CHARS:
        message = message[:_MAX_MESSAGE_CHARS] + "..."
    return message


def redact_exception(exc: BaseException) -> tuple[str, str]:
    """Map a server-side exception to a ``(kind, message)`` wire pair."""
    if isinstance(exc, EncDBDBError):
        kind = type(exc).__name__
        if kind not in WIRE_SAFE_EXCEPTIONS:
            # A subclass defined outside the registry: keep the nearest
            # registered ancestor so the client still gets a typed error.
            kind = next(
                (
                    base.__name__
                    for base in type(exc).__mro__
                    if base.__name__ in WIRE_SAFE_EXCEPTIONS
                ),
                "EncDBDBError",
            )
        return kind, scrub_message(str(exc))
    return "EncDBDBError", REDACTED_MESSAGE


def raise_wire_error(kind: str, message: str) -> None:
    """Client side: re-raise an error frame as its typed exception."""
    raise WIRE_SAFE_EXCEPTIONS.get(kind, EncDBDBError)(scrub_message(message))

"""Attested client/server network layer (deployment topology of §3.1).

The paper's architecture places the application + trusted proxy in the data
owner's realm and the DBMS + enclave at an untrusted DBaaS provider.
In-process deployments wire the two directly; this package carries the same
calls over real TCP sockets:

- :mod:`repro.net.protocol` — versioned, length-prefixed binary frames
  (hello / attest / provision / query / result / error) with a typed codec
  for plans, results and encrypted builds. No pickle: only registered types
  decode, so a malicious peer cannot instantiate arbitrary objects.
- :mod:`repro.net.server` — an asyncio TCP server fronting one
  :class:`~repro.server.dbms.EncDBDBServer` with concurrent per-connection
  sessions, admission control, and serialized enclave ecalls.
- :mod:`repro.net.client` — the remote data owner and remote trusted proxy:
  attestation + ``SKDB`` provisioning through the DH secure channel over
  sockets, then plain SQL with client-side plan encryption and result
  decryption. The wire carries only ciphertext for encrypted columns.
- :mod:`repro.net.errors` — redaction of server-side exceptions into typed
  wire error frames (no stack traces, no plaintext values).
"""

from repro.net.client import (
    NetConnection,
    RemoteDataOwner,
    RemoteProxy,
    RemoteServer,
    RetryPolicy,
    connect_system,
)
from repro.net.protocol import PROTOCOL_VERSION, FrameType
from repro.net.server import NetServer, ServerThread

__all__ = [
    "PROTOCOL_VERSION",
    "FrameType",
    "NetConnection",
    "NetServer",
    "RemoteDataOwner",
    "RemoteProxy",
    "RemoteServer",
    "RetryPolicy",
    "ServerThread",
    "connect_system",
]

"""The data owner's side of the wire: remote proxy + remote provisioning.

Everything in this module runs in the **trusted realm** (the data owner's
machines). The key structural property: plaintext of encrypted columns,
``SKDB``, column keys and rotation offsets exist only inside these classes —
what they hand to :class:`NetConnection` for transmission is exactly what an
in-process deployment hands to :class:`~repro.server.dbms.EncDBDBServer`:
encrypted range bounds, ciphertext dictionaries, PAE-wrapped key material.
The frame tap (:attr:`NetConnection.tap`) exists so tests can sniff every
byte that crosses and prove it.

:class:`RemoteServer` duck-types the ``EncDBDBServer`` surface, so the
existing :class:`~repro.client.proxy.Proxy` and
:class:`~repro.client.owner.DataOwner` — including the paper §4.2
attestation + provisioning sequence — run against it unchanged.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.client.owner import DataOwner
from repro.client.proxy import Proxy
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.encdict.builder import BuildResult, BuildStats
from repro.exceptions import (
    AttestationError,
    NetworkError,
    ProtocolError,
    ServerBusyError,
)
from repro.net.errors import raise_wire_error
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FrameType,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
)

#: ``tap(direction, frame_type, payload_bytes)`` — observes every frame
#: payload this connection sends ("send") or receives ("recv"), *after*
#: encoding / *before* decoding. Used by the ciphertext-only wire tests.
FrameTap = Callable[[str, FrameType, bytes], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff for transient failures.

    Applied by :class:`NetConnection` to the connect path (socket refused /
    reset, server at admission capacity) and — on request — to the server's
    "another session is attesting" rejection, the two conditions the server
    raises as :class:`~repro.exceptions.ServerBusyError` precisely because
    they are transient. ``attempts`` caps the total tries so tests (and
    genuinely-down endpoints) fail fast instead of hanging; the jitter
    de-synchronizes a thundering herd of clients retrying the same server.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt, no backoff (the pre-PR-7 behaviour)."""
        return cls(attempts=1)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (1-based), jittered."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter <= 0:
            return raw
        spread = self.jitter * raw
        return max(0.0, raw - spread + rng.random() * 2.0 * spread)


class NetConnection:
    """One synchronous client connection speaking the EncDBDB wire protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        tap: FrameTap | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.tap = tap
        self.retry = retry if retry is not None else RetryPolicy()
        # Jitter source only — nothing cryptographic rides on it, and a
        # nondeterministic seed is the point (herd de-synchronization).
        self._jitter_rng = random.Random()
        attempt = 0
        while True:
            failure: NetworkError
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
            except OSError as exc:
                failure = NetworkError(f"cannot connect to {host}:{port}: {exc}")
            else:
                self._closed = False
                try:
                    self.hello: dict = self._handshake()
                    return
                except ServerBusyError as exc:
                    # Admission rejection arrives as an ERROR reply to the
                    # hello; drop this socket and try again from scratch.
                    self.close()
                    failure = exc
                except BaseException:
                    self.close()
                    raise
            attempt += 1
            if attempt >= self.retry.attempts:
                raise failure from None
            time.sleep(self.retry.delay(attempt, self._jitter_rng))

    # ------------------------------------------------------------------
    def _read_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            try:
                chunk = self._sock.recv(n - len(chunks))
            except OSError as exc:
                raise NetworkError(f"receive failed: {exc}") from None
            if not chunk:
                raise NetworkError("connection closed by server")
            chunks += chunk
        return bytes(chunks)

    def _send_frame(self, frame_type: FrameType, payload: Any) -> None:
        raw = encode_payload(payload)
        if self.tap is not None:
            self.tap("send", frame_type, raw)
        try:
            self._sock.sendall(encode_frame(frame_type, raw))
        except OSError as exc:
            raise NetworkError(f"send failed: {exc}") from None

    def _recv_frame(self) -> tuple[FrameType, Any]:
        frame_type, raw = read_frame(self._read_exact)
        if self.tap is not None:
            self.tap("recv", frame_type, raw)
        payload = decode_payload(raw)
        if frame_type is FrameType.ERROR:
            raise_wire_error(payload["kind"], payload["message"])
        return frame_type, payload

    def request(
        self, frame_type: FrameType, payload: Any, *, retry_busy: bool = False
    ) -> tuple[FrameType, Any]:
        """One round trip; wire error frames re-raise as typed exceptions.

        ``retry_busy`` opts a request into the connection's backoff policy
        for :class:`ServerBusyError` replies. Only safe for requests whose
        rejection provably left no server-side state behind (the attest
        *offer* — the server rejects it before any enclave call).
        """
        if self._closed:
            raise NetworkError("connection is closed")
        attempt = 0
        while True:
            self._send_frame(frame_type, payload)
            try:
                return self._recv_frame()
            except ServerBusyError:
                attempt += 1
                if not retry_busy or attempt >= self.retry.attempts:
                    raise
                time.sleep(self.retry.delay(attempt, self._jitter_rng))

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """One server RPC: QUERY out, RESULT (or typed error) back."""
        reply_type, payload = self.request(
            FrameType.QUERY,
            {"method": method, "args": list(args), "kwargs": kwargs},
        )
        if reply_type is not FrameType.RESULT:
            raise ProtocolError(f"expected RESULT, got {reply_type.name}")
        return payload["value"]

    def _handshake(self) -> dict:
        reply_type, hello = self.request(
            FrameType.HELLO, {"client": "encdbdb", "protocol": PROTOCOL_VERSION}
        )
        if reply_type is not FrameType.HELLO or not isinstance(hello, dict):
            raise ProtocolError("server did not answer the hello frame")
        return hello

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass


def _sanitize_build(build: BuildResult) -> BuildResult:
    """Strip owner-side secrets from build stats before they cross the wire.

    ``rnd_offset`` is the plaintext rotation offset of ED2/ED5/ED8 — the one
    value whose secrecy those kinds depend on (it exists on the wire only as
    the dictionary's ``enc_rnd_offset`` ciphertext). ``unique_values`` and
    ``bsmax`` leak the frequency information the smoothing and hiding kinds
    pay dictionary space to conceal. The untrusted storage layer keeps none of
    these either (see ``storage._read_encrypted_column``).
    """
    stats = build.stats
    return BuildResult(
        build.dictionary,
        build.attribute_vector,
        BuildStats(
            kind=stats.kind,
            column_length=stats.column_length,
            unique_values=-1,
            dictionary_entries=stats.dictionary_entries,
            bsmax=None,
            rnd_offset=None,
        ),
    )


def _sanitize_builds(build):
    """Sanitize one build or a per-partition build list.

    Partition metadata never crosses the wire in either direction: the
    protocol encodes only the registered ``EncryptedDictionary`` fields,
    which deliberately exclude ``partition_id`` (partition ids are
    server-side bookkeeping), and ``BuildStats`` carries no partition
    fields to strip. What remains owner-chosen — how many builds are sent —
    is exactly the layout the server must store anyway.
    """
    if isinstance(build, (list, tuple)):
        return [_sanitize_build(item) for item in build]
    return _sanitize_build(build)


class _RemoteTable:
    """Schema-only table view (mirrors ``catalog.table(name).specs``)."""

    def __init__(self, name: str, specs: tuple) -> None:
        self.name = name
        self.specs = list(specs)


class _RemoteCatalog:
    """Read-only catalog shim backed by server RPCs."""

    def __init__(self, connection: NetConnection) -> None:
        self._connection = connection

    def table_names(self) -> list[str]:
        return self._connection.call("table_names")

    def table(self, name: str) -> _RemoteTable:
        return _RemoteTable(name, self._connection.call("table_specs", name))


class _RemoteCostModel:
    """Snapshot-backed view of the remote enclave's cost accounting."""

    def __init__(self, connection: NetConnection) -> None:
        self._connection = connection

    def snapshot(self) -> dict:
        return self._connection.call("cost_snapshot")

    @property
    def ecalls(self) -> int:
        return self.snapshot()["ecalls"]

    @property
    def decryptions(self) -> int:
        return self.snapshot()["decryptions"]

    @property
    def untrusted_loads(self) -> int:
        return self.snapshot()["untrusted_loads"]

    def estimated_cycles(self) -> float:
        return self.snapshot()["estimated_cycles"]


class RemoteServer:
    """Client-side stub presenting the :class:`EncDBDBServer` surface.

    ``Proxy`` and ``DataOwner`` call it exactly as they call an in-process
    server; each method is one wire round trip. ``attestation`` is a *local*
    :class:`AttestationService` — quote verification must happen in the
    trusted realm (the simulated Intel root key is shared, mirroring how a
    real verifier talks to IAS rather than trusting the provider).
    """

    def __init__(self, connection: NetConnection) -> None:
        from repro.sgx.attestation import AttestationService

        self.connection = connection
        self.attestation = AttestationService()
        self.catalog = _RemoteCatalog(connection)
        self.cost_model = _RemoteCostModel(connection)

    # -- handshake facts -------------------------------------------------
    @property
    def measurement(self) -> bytes:
        return self.connection.hello["measurement"]

    @property
    def provisioned(self) -> bool:
        return bool(self.connection.hello.get("provisioned"))

    @property
    def session_id(self) -> int:
        return self.connection.hello.get("session", 0)

    # -- attestation + provisioning (paper §4.2 steps 2, over sockets) ---
    def enclave_channel_offer(self):
        # The server holds one provisioning slot; a lost race surfaces as
        # ServerBusyError before any enclave state changes, so the offer is
        # safe to retry under the connection's backoff policy.
        _, payload = self.connection.request(
            FrameType.ATTEST, {"op": "offer"}, retry_busy=True
        )
        return payload["offer"]

    def enclave_channel_accept(self, client_public: int) -> None:
        self.connection.request(
            FrameType.ATTEST, {"op": "accept", "client_public": int(client_public)}
        )

    def enclave_provision(self, wire_blob: bytes) -> None:
        self.connection.request(FrameType.PROVISION, {"blob": wire_blob})
        self.connection.hello["provisioned"] = True

    def enclave_replicate_key(self, offer):
        """Primary-side key replication (cluster PR 7): relay a replica
        enclave's channel offer in; DH public + PAE-wrapped ``SKDB`` out.
        The relay sees only those two opaque values."""
        return self.connection.call("enclave_replicate_key", offer)

    def enclave_is_provisioned(self) -> bool:
        return bool(self.connection.call("enclave_is_provisioned"))

    # -- DDL / import ------------------------------------------------------
    def create_table(self, plan) -> None:
        self.connection.call("create_table", plan)

    def bulk_load(
        self,
        table_name: str,
        *,
        plain_columns: dict[str, list] | None = None,
        encrypted_builds: dict[str, BuildResult] | None = None,
    ) -> int:
        return self.connection.call(
            "bulk_load",
            table_name,
            plain_columns=plain_columns or {},
            encrypted_builds={
                name: _sanitize_builds(build)
                for name, build in (encrypted_builds or {}).items()
            },
        )

    # -- query execution -----------------------------------------------------
    def execute_select(self, plan):
        return self.connection.call("execute_select", plan)

    def execute_select_pushdown(self, plan):
        """Routed SELECT (analytics pushdown, PR 9): decisions + either
        padded aggregate frames or rendered ciphertext rows."""
        return self.connection.call("execute_select_pushdown", plan)

    def explain_pushdown(self, plan) -> tuple:
        return tuple(self.connection.call("explain_pushdown", plan))

    def execute_join_select(self, plan, salt: bytes):
        return self.connection.call("execute_join_select", plan, salt)

    def execute_insert(self, table_name: str, prepared_rows: list[dict]) -> int:
        return self.connection.call("execute_insert", table_name, prepared_rows)

    def execute_delete(self, plan) -> int:
        return self.connection.call("execute_delete", plan)

    def delete_record_ids(self, table_name: str, record_ids) -> int:
        return self.connection.call("delete_record_ids", table_name, record_ids)

    def execute_merge(self, plan) -> int:
        return self.connection.call("execute_merge", plan)

    # -- online rotation (repro.migrate) -----------------------------------
    def migrate_start(
        self,
        table_name: str,
        column_name: str,
        *,
        new_kind: str | None = None,
        rotate_key: bool = False,
    ):
        return self.connection.call(
            "migrate_start",
            table_name,
            column_name,
            new_kind=new_kind,
            rotate_key=rotate_key,
        )

    def migrate_step(self, table_name: str, column_name: str, steps: int = 1):
        return self.connection.call("migrate_step", table_name, column_name, steps)

    def migrate_run(self, table_name: str, column_name: str):
        return self.connection.call("migrate_run", table_name, column_name)

    def migrate_status(
        self, table_name: str | None = None, column_name: str | None = None
    ) -> list:
        return self.connection.call("migrate_status", table_name, column_name)

    def migrate_rollback(self, table_name: str, column_name: str):
        return self.connection.call("migrate_rollback", table_name, column_name)

    # -- introspection / persistence (server-side paths) ------------------
    def table_names(self) -> list[str]:
        return self.connection.call("table_names")

    def table_specs(self, table_name: str) -> tuple:
        return tuple(self.connection.call("table_specs", table_name))

    def cost_snapshot(self) -> dict:
        return self.connection.call("cost_snapshot")

    def save(self, path) -> None:
        self.connection.call("save", str(path))

    def enclave_seal(self) -> bytes:
        return self.connection.call("enclave_seal")

    def enclave_restore(self, sealed_blob: bytes) -> None:
        self.connection.call("enclave_restore", sealed_blob)

    def close(self) -> None:
        self.connection.close()


class RemoteProxy(Proxy):
    """The trusted proxy, deployed in the data owner's realm over TCP.

    Identical logic to :class:`Proxy` — plans and encrypts client-side,
    decrypts and post-processes client-side — only the server surface is a
    :class:`RemoteServer`, so plans/results travel as wire frames.
    """

    @property
    def connection(self) -> NetConnection:
        return self._server.connection


class RemoteDataOwner(DataOwner):
    """The data owner provisioning a remote deployment (paper §4.2).

    Inherits the full local EncDB pipeline; ``attest_and_provision`` against
    a :class:`RemoteServer` performs quote verification locally and pushes
    ``SKDB`` through the DH secure channel over the socket.
    """


def connect_system(
    host: str,
    port: int,
    *,
    seed: int | bytes | str = 0,
    master_key: bytes | None = None,
    provision: bool | None = None,
    expected_measurement: bytes | None = None,
    timeout: float = 60.0,
    tap: FrameTap | None = None,
    retry: RetryPolicy | None = None,
):
    """Stand up an :class:`~repro.client.session.EncDBDBSystem` over TCP.

    - ``provision=None`` (default): attest + push ``SKDB`` only when the
      remote enclave advertises that it holds no key yet; otherwise assume
      this owner's deterministic key (same ``seed`` ⇒ same ``SKDB``) or the
      explicit ``master_key`` matches the provisioned one.
    - ``provision=True`` / ``False`` force either behaviour.
    - ``expected_measurement`` pins the enclave identity; without
      provisioning it is checked against the advertised measurement.
    """
    from repro.client.session import EncDBDBSystem

    rng = HmacDrbg(seed if isinstance(seed, (bytes, str)) else int(seed))
    connection = NetConnection(host, port, timeout=timeout, tap=tap, retry=retry)
    try:
        server = RemoteServer(connection)
        owner = RemoteDataOwner(rng=rng.fork("owner"), master_key=master_key)
        should_provision = (
            provision if provision is not None else not server.provisioned
        )
        if should_provision:
            owner.attest_and_provision(
                server, expected_measurement=expected_measurement
            )
        elif (
            expected_measurement is not None
            and server.measurement != expected_measurement
        ):
            raise AttestationError(
                "remote enclave measurement does not match the pinned identity"
            )
        proxy = RemoteProxy(
            server, owner.master_key, default_pae(rng=rng.fork("proxy"))
        )
        # Mirror any pre-existing schema (e.g. reconnecting after a restart)
        # so the proxy can plan against tables it did not create itself.
        for name in server.table_names():
            proxy.register_schema(name, list(server.table_specs(name)))
    except BaseException:
        connection.close()
        raise
    return EncDBDBSystem(server, owner, proxy)

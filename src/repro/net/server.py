"""The asyncio TCP front end of one EncDBDB deployment.

Untrusted infrastructure: this module runs entirely at the DBaaS provider
and only relays opaque frames into the :class:`~repro.server.dbms.
EncDBDBServer` it fronts. It adds the concerns a real deployment has that an
in-process deployment does not:

- **Concurrent sessions.** Every TCP connection is one session with its own
  id and counters. An admission-control semaphore bounds how many sessions
  are resident; a client arriving beyond capacity receives a typed busy
  error instead of an unbounded queue slot.
- **Serialized enclave ecalls.** The paper's cost accounting (one ecall per
  query, exact decryption counts) only stays meaningful if boundary
  crossings do not interleave, so every RPC holds the ecall lock while it
  executes. RPC bodies run in a worker thread, which keeps the event loop
  free to accept frames from other sessions in the meantime. Bulk imports
  perform no ecalls at all (the owner ships finished ciphertext), so they
  run off the lock entirely — a long load never starves other sessions'
  queries (:data:`LOCK_FREE_METHODS`).
- **One provisioning at a time.** The enclave holds a single handshake slot
  (offer → accept → provision), so the server grants it to one session at a
  time and reclaims it if that session disconnects mid-handshake.
- **Sealed-storage restarts.** With a ``sealed_key_path``, the server seals
  ``SKDB`` to the enclave identity after every successful provisioning and
  unseals it on boot — a restarted server answers queries without a fresh
  attestation round trip (the paper's stated purpose of sealing).
- **Redacted errors.** Execution failures reach the client as typed error
  frames with no stack traces or value material (:mod:`repro.net.errors`).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import (
    EnclaveSecurityError,
    NetworkError,
    ProtocolError,
    ServerBusyError,
)
from repro.net.errors import redact_exception
from repro.net.protocol import (
    PROTOCOL_VERSION,
    FrameType,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame_async,
)
from repro.runtime import shutdown_pools
from repro.server.dbms import EncDBDBServer

#: RPC surface a remote proxy / data owner may invoke, mapped to the method
#: name on :class:`EncDBDBServer`. Everything else is rejected — the wire
#: cannot reach arbitrary attributes of the DBMS.
RPC_METHODS: dict[str, str] = {
    "create_table": "create_table",
    "bulk_load": "bulk_load",
    "execute_select": "execute_select",
    # Analytics pushdown (PR 9): routed SELECT + its EXPLAIN counterpart.
    "execute_select_pushdown": "execute_select_pushdown",
    "explain_pushdown": "explain_pushdown",
    "execute_join_select": "execute_join_select",
    "execute_insert": "execute_insert",
    "execute_delete": "execute_delete",
    "delete_record_ids": "delete_record_ids",
    "execute_merge": "execute_merge",
    "save": "save",
    "table_names": "table_names",
    "table_specs": "table_specs",
    "cost_snapshot": "cost_snapshot",
    "enclave_seal": "enclave_seal",
    "enclave_restore": "enclave_restore",
    # Cluster key replication (primary side): hand SKDB to an attested
    # replica enclave through a secure channel terminated inside both
    # enclaves. The relay sees only a quote and PAE blobs.
    "enclave_replicate_key": "enclave_replicate_key",
    "enclave_is_provisioned": "enclave_is_provisioned",
    # Online rotation (repro.migrate): typed MigrationStatus progress frames.
    "migrate_start": "migrate_start",
    "migrate_step": "migrate_step",
    "migrate_run": "migrate_run",
    "migrate_status": "migrate_status",
    "migrate_rollback": "migrate_rollback",
}

#: RPC methods that run on worker threads *without* the ecall lock. Bulk
#: imports perform no enclave calls at all (the owner ships finished
#: ciphertext), so a long load cannot starve concurrent queries. Migration
#: verbs DO cross the boundary, but deliberately run off the asyncio lock
#: too: a ``migrate_run`` that held it would stall every query for the whole
#: backfill. Correctness comes from the enclave's boundary lock (one thread
#: inside per ecall) and the column's shadow lock (atomic swaps/flips), so a
#: concurrent query waits at most one partition-sized critical section —
#: the paper-style cost accounting may interleave while a rotation runs.
LOCK_FREE_METHODS = frozenset(
    {
        "bulk_load",
        "migrate_start",
        "migrate_step",
        "migrate_run",
        "migrate_status",
        "migrate_rollback",
    }
)


@dataclass
class Session:
    """Per-connection state."""

    session_id: int
    peer: str
    queries: int = 0
    holds_provision_lock: bool = field(default=False, repr=False)
    #: Frames currently being dispatched for this session. Only the event
    #: loop thread touches it; ``NetServer.stop`` polls it to let in-flight
    #: RPCs finish (and their replies flush) before cancelling the session.
    inflight: int = field(default=0, repr=False)


class NetServer:
    """An asyncio TCP server fronting one :class:`EncDBDBServer`."""

    def __init__(
        self,
        dbms: EncDBDBServer | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 8,
        admission_timeout: float = 1.0,
        sealed_key_path: str | Path | None = None,
        scan_workers: int | None = None,
        shard: int | None = None,
        drain_timeout: float = 1.0,
    ) -> None:
        # ``scan_workers`` sizes the shared scan/build worker pools of a
        # server this front end constructs itself; with an injected DBMS the
        # caller configures the DBMS directly.
        self.dbms = (
            dbms
            if dbms is not None
            else EncDBDBServer(scan_workers=scan_workers)
        )
        self.host = host
        self._requested_port = port
        self.max_sessions = max_sessions
        self.admission_timeout = admission_timeout
        self.sealed_key_path = Path(sealed_key_path) if sealed_key_path else None
        #: Shard id advertised in the hello frame (cluster deployments);
        #: purely informational — routing is decided client-side.
        self.shard = shard
        #: How long ``stop`` waits for in-flight RPCs before cancelling.
        self.drain_timeout = drain_timeout
        self.sessions: dict[int, Session] = {}
        self._next_session_id = 1
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._admission: asyncio.Semaphore | None = None
        self._ecall_lock: asyncio.Lock | None = None
        self._provision_lock: asyncio.Lock | None = None
        # Live per-connection tasks; event-loop thread only.
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._admission = asyncio.Semaphore(self.max_sessions)
        self._ecall_lock = asyncio.Lock()
        self._provision_lock = asyncio.Lock()
        self._maybe_restore_sealed_key()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        if self._asyncio_server is None:
            raise NetworkError("server is not started")
        return self._asyncio_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._asyncio_server is None:
            await self.start()
        await self._asyncio_server.serve_forever()

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Drain before releasing the pools: RPCs already dispatched get up
        # to ``drain_timeout`` to finish and flush their replies, then every
        # remaining connection task — idle keep-alive sessions and any
        # waiter still parked on the admission semaphore — is cancelled and
        # awaited. Once the drain returns, ``self.sessions`` is empty and
        # no task holds the provision lock, so the same NetServer instance
        # can be ``start()``-ed again in-process without leaking sessions
        # (the cluster tests restart shards exactly this way).
        await self._drain_sessions()
        # Release every registered worker pool (scan + build). wait=False:
        # in-flight chunk scans finish in the background instead of blocking
        # the event loop; pools are lazily recreated if needed. The registry
        # makes this idempotent even when several servers stop concurrently.
        shutdown_pools(wait=False)

    async def _drain_sessions(self) -> None:
        tasks = {task for task in self._conn_tasks if not task.done()}
        if tasks:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_timeout
            while (
                any(s.inflight for s in self.sessions.values())
                and loop.time() < deadline
            ):
                await asyncio.sleep(0.02)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        self._conn_tasks.clear()

    def _maybe_restore_sealed_key(self) -> None:
        """Boot path of a restarted server: unseal ``SKDB`` if a sealed blob
        exists for this deployment (no attestation round trip needed)."""
        if self.sealed_key_path is not None and self.sealed_key_path.exists():
            self.dbms.enclave_restore(self.sealed_key_path.read_bytes())

    def _persist_sealed_key(self) -> None:
        if self.sealed_key_path is not None:
            self.sealed_key_path.write_bytes(self.dbms.enclave_seal())

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(
        self, writer: asyncio.StreamWriter, frame_type: FrameType, payload: Any
    ) -> None:
        writer.write(encode_frame(frame_type, encode_payload(payload)))
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: BaseException
    ) -> None:
        kind, message = redact_exception(exc)
        await self._send(writer, FrameType.ERROR, {"kind": kind, "message": message})

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Session | None = None
        admitted = False
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                await asyncio.wait_for(
                    self._admission.acquire(), self.admission_timeout
                )
                admitted = True
            except (asyncio.TimeoutError, TimeoutError):
                await self._send_error(
                    writer,
                    ServerBusyError(
                        f"server at capacity ({self.max_sessions} sessions)"
                    ),
                )
                return
            session = await self._hello(reader, writer)
            if session is None:
                return
            await self._session_loop(session, reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            BrokenPipeError,
        ):
            pass  # peer went away; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with this session still connected
        finally:
            if session is not None:
                if session.holds_provision_lock:
                    self._provision_lock.release()
                    session.holds_provision_lock = False
                self.sessions.pop(session.session_id, None)
            if admitted:
                self._admission.release()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _hello(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Session | None:
        """Handshake: the first frame must be a version-compatible HELLO."""
        try:
            frame_type, raw = await read_frame_async(reader)
            if frame_type is not FrameType.HELLO:
                raise ProtocolError("expected a hello frame first")
            hello = decode_payload(raw)
            if not isinstance(hello, dict) or hello.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"client protocol {hello.get('protocol') if isinstance(hello, dict) else '?'} "
                    f"is not supported (server speaks {PROTOCOL_VERSION})"
                )
        except ProtocolError as exc:
            await self._send_error(writer, exc)
            return None
        session = Session(
            session_id=self._next_session_id,
            peer=str(writer.get_extra_info("peername")),
        )
        self._next_session_id += 1
        self.sessions[session.session_id] = session
        await self._send(
            writer,
            FrameType.HELLO,
            {
                "server": "encdbdb",
                "protocol": PROTOCOL_VERSION,
                "session": session.session_id,
                "measurement": self.dbms.measurement,
                "provisioned": await self._run_ecall(
                    self.dbms.enclave_is_provisioned
                ),
                "max_sessions": self.max_sessions,
                "shard": self.shard,
            },
        )
        return session

    async def _session_loop(
        self,
        session: Session,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                frame_type, raw = await read_frame_async(reader)
            except ProtocolError as exc:
                # A peer that breaks framing cannot be resynchronized.
                await self._send_error(writer, exc)
                return
            session.inflight += 1
            try:
                try:
                    reply_type, reply = await self._dispatch_frame(
                        session, frame_type, decode_payload(raw)
                    )
                except Exception as exc:  # noqa: BLE001 — redacted at the boundary
                    await self._send_error(writer, exc)
                    continue
                await self._send(writer, reply_type, reply)
            finally:
                session.inflight -= 1

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    async def _run_ecall(self, func, *args: Any, **kwargs: Any) -> Any:
        """Run one DBMS call with exclusive enclave access.

        The thread offload keeps the event loop reading frames from other
        sessions while a long scan executes; the lock keeps the enclave's
        cost accounting exactly as sequential as the paper assumes.
        """
        async with self._ecall_lock:
            return await asyncio.to_thread(func, *args, **kwargs)

    async def _dispatch_frame(
        self, session: Session, frame_type: FrameType, payload: Any
    ) -> tuple[FrameType, Any]:
        if not isinstance(payload, dict):
            raise ProtocolError(f"{frame_type.name} payload must be a mapping")
        if frame_type is FrameType.ATTEST:
            return await self._dispatch_attest(session, payload)
        if frame_type is FrameType.PROVISION:
            return await self._dispatch_provision(session, payload)
        if frame_type is FrameType.QUERY:
            return await self._dispatch_query(session, payload)
        raise ProtocolError(f"unexpected {frame_type.name} frame mid-session")

    async def _dispatch_attest(
        self, session: Session, payload: dict
    ) -> tuple[FrameType, Any]:
        op = payload.get("op")
        if op == "offer":
            # One provisioning handshake at a time: the enclave has a single
            # listener slot, and SKDB installation must not interleave.
            if not session.holds_provision_lock:
                try:
                    await asyncio.wait_for(
                        self._provision_lock.acquire(), self.admission_timeout * 5
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    raise ServerBusyError(
                        "another session is attesting; retry later"
                    ) from None
                session.holds_provision_lock = True
            offer = await self._run_ecall(self.dbms.enclave_channel_offer)
            return FrameType.ATTEST, {"op": "offer", "offer": offer}
        if op == "accept":
            if not session.holds_provision_lock:
                raise EnclaveSecurityError(
                    "attestation accept outside an attestation sequence"
                )
            client_public = payload.get("client_public")
            if not isinstance(client_public, int):
                raise ProtocolError("attest accept requires an integer public value")
            await self._run_ecall(self.dbms.enclave_channel_accept, client_public)
            return FrameType.ATTEST, {"op": "accepted"}
        raise ProtocolError(f"unknown attest op {op!r}")

    async def _dispatch_provision(
        self, session: Session, payload: dict
    ) -> tuple[FrameType, Any]:
        if not session.holds_provision_lock:
            raise EnclaveSecurityError(
                "provision outside an attestation sequence"
            )
        blob = payload.get("blob")
        if not isinstance(blob, bytes):
            raise ProtocolError("provision requires a bytes blob")
        await self._run_ecall(self.dbms.enclave_provision, blob)
        await self._run_ecall(self._persist_sealed_key)
        self._provision_lock.release()
        session.holds_provision_lock = False
        return FrameType.PROVISION, {"status": "ok"}

    async def _dispatch_query(
        self, session: Session, payload: dict
    ) -> tuple[FrameType, Any]:
        method = payload.get("method")
        target = RPC_METHODS.get(method) if isinstance(method, str) else None
        if target is None:
            raise ProtocolError(f"unknown rpc method {method!r}")
        args = payload.get("args", ())
        kwargs = payload.get("kwargs", {})
        if not isinstance(args, (list, tuple)) or not isinstance(kwargs, dict):
            raise ProtocolError("rpc args/kwargs malformed")
        session.queries += 1
        if method in LOCK_FREE_METHODS:
            # No boundary crossing to serialize: run on a worker thread
            # while other sessions keep querying through the ecall lock.
            value = await asyncio.to_thread(
                getattr(self.dbms, target), *args, **kwargs
            )
        else:
            value = await self._run_ecall(
                getattr(self.dbms, target), *args, **kwargs
            )
        return FrameType.RESULT, {"value": value}


class ServerThread:
    """Run a :class:`NetServer` on a background event loop.

    Tests, benchmarks and the in-terminal quickstart all need a live TCP
    server next to a synchronous client in the same process::

        with ServerThread(NetServer(dbms)) as handle:
            system = EncDBDBSystem.connect("127.0.0.1", handle.port)
    """

    def __init__(self, server: NetServer, *, startup_timeout: float = 10.0) -> None:
        self.server = server
        self.port: int | None = None
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise NetworkError("server thread did not start in time")
        if self._error is not None:
            raise self._error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
            self.port = self.server.port
        except BaseException as exc:  # noqa: BLE001 — reported to the caller
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(self._startup_timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

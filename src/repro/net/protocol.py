"""The EncDBDB wire protocol: versioned, length-prefixed, typed frames.

One frame is::

    magic(4) | version(1) | frame type(1) | payload length(4, big endian) | payload

The six frame types mirror the deployment protocol of paper §4.2: ``HELLO``
(capability exchange, enclave measurement), ``ATTEST`` (quote offer and DH
handshake), ``PROVISION`` (the PAE-wrapped ``SKDB`` push), ``QUERY`` (one
server RPC: an encrypted plan or a catalog call), ``RESULT`` (its return
value) and ``ERROR`` (a redacted, typed failure).

Payloads are encoded with a small tagged binary codec instead of pickle: the
decoder only reconstructs *registered* dataclasses field-by-field, so a
malicious peer can neither execute code on decode nor smuggle unexpected
object graphs. Registered types are exactly what the EncDBDB topology ships
between trusted proxy and untrusted server — query plans with encrypted
range bounds, rendered result columns, encrypted dictionary builds, quotes.
Everything else is rejected with :class:`~repro.exceptions.ProtocolError`.
"""

from __future__ import annotations

import enum
import struct
from typing import Any, Callable

import numpy as np

from repro.columnstore.types import ColumnSpec, parse_type, ValueType
from repro.encdict.builder import BuildResult, BuildStats
from repro.encdict.dictionary import EncryptedDictionary
from repro.encdict.options import EncryptedDictionaryKind, kind_by_name
from repro.exceptions import ProtocolError
from repro.sgx.attestation import Quote
from repro.sgx.channel import ChannelOffer
from repro.sql.ast_nodes import Aggregate, OrderItem
from repro.sql.planner import (
    CreatePlan,
    DeletePlan,
    EncryptedRangeFilter,
    FilterNode,
    JoinSelectPlan,
    MergePlan,
    PostProcessing,
    PrefixFilter,
    RangeFilter,
    SelectPlan,
)
from repro.migrate.plan import MigrationStatus
from repro.sql.result import (
    AggregateFrames,
    PushdownSelectResult,
    ResultColumn,
    RoutingDecision,
    ServerResult,
)

PROTOCOL_VERSION = 1
MAGIC = b"EDBN"
HEADER = struct.Struct(">4sBBI")

#: Upper bound on one frame's payload; a peer announcing more is cut off
#: before any allocation happens (flood/DoS hygiene, not secrecy).
MAX_FRAME_BYTES = 128 * 1024 * 1024

_MAX_DEPTH = 64


class FrameType(enum.IntEnum):
    HELLO = 1
    ATTEST = 2
    PROVISION = 3
    QUERY = 4
    RESULT = 5
    ERROR = 6


# ----------------------------------------------------------------------
# Tagged value codec
# ----------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_NDARRAY = 0x0A
_T_OBJECT = 0x0B


class _Registered:
    """Codec entry for one wire-visible class."""

    def __init__(
        self,
        cls: type,
        fields: tuple[str, ...],
        *,
        encode: Callable[[Any], dict] | None = None,
        decode: Callable[[dict], Any] | None = None,
    ) -> None:
        self.cls = cls
        self.fields = fields
        self.encode = encode if encode is not None else (
            lambda obj: {name: getattr(obj, name) for name in fields}
        )
        self.decode = decode if decode is not None else (
            lambda values: cls(**values)
        )


_BY_NAME: dict[str, _Registered] = {}
_BY_TYPE: dict[type, str] = {}


def _register(
    cls: type,
    fields: tuple[str, ...],
    *,
    name: str | None = None,
    encode: Callable[[Any], dict] | None = None,
    decode: Callable[[dict], Any] | None = None,
) -> None:
    wire_name = name if name is not None else cls.__name__
    _BY_NAME[wire_name] = _Registered(cls, fields, encode=encode, decode=decode)
    _BY_TYPE[cls] = wire_name


# Attestation / secure channel ------------------------------------------------
_register(
    Quote,
    ("wire",),
    encode=lambda quote: {"wire": quote.to_wire()},
    decode=lambda values: Quote.from_wire(values["wire"]),
)
_register(ChannelOffer, ("quote",))

# Schema ----------------------------------------------------------------------
_register(
    ColumnSpec,
    ("name", "value_type", "protection", "bsmax"),
    encode=lambda spec: {
        "name": spec.name,
        "value_type": spec.value_type,
        "protection": spec.protection,
        "bsmax": spec.bsmax,
    },
)
_register(
    EncryptedDictionaryKind,
    ("name",),
    name="EDKind",
    encode=lambda kind: {"name": kind.name},
    decode=lambda values: kind_by_name(values["name"]),
)

# Query plans (what the proxy ships after encrypting every filter bound) ------
_register(RangeFilter, ("column", "low", "low_inclusive", "high", "high_inclusive", "negated"))
_register(EncryptedRangeFilter, ("column", "tau", "negated"))
_register(PrefixFilter, ("column", "prefix", "negated"))
_register(FilterNode, ("operator", "children"))
_register(Aggregate, ("function", "column"))
_register(OrderItem, ("column", "descending"))
_register(PostProcessing, ("items", "group_by", "order_by", "limit", "distinct"))
_register(SelectPlan, ("table", "needed_columns", "filter", "post"))
_register(
    JoinSelectPlan,
    (
        "left_table",
        "right_table",
        "left_column",
        "right_column",
        "left_needed",
        "right_needed",
        "left_filter",
        "right_filter",
        "post",
    ),
)
_register(DeletePlan, ("table", "filter"))
_register(CreatePlan, ("table", "specs"))
_register(MergePlan, ("table",))

# Results (ciphertext columns + metadata, paper §4.2 step 13) -----------------
# ``key_epoch`` rides along so the proxy can derive the storage-epoch column
# key after an online key rotation (repro.migrate) finalizes.
_register(
    ResultColumn,
    ("table_name", "column_name", "encrypted", "data", "key_epoch"),
)
_register(ServerResult, ("table_name", "record_ids", "columns"))

# Analytics pushdown (PR 9): routing decisions are public plan metadata;
# aggregate results travel as padded, PAE-encrypted group frames — the
# server (and hence the wire) sees uniform ciphertext blobs only.
_register(RoutingDecision, ("clause", "pushed", "reason"))
_register(AggregateFrames, ("table_name", "group_column", "labels", "frames"))
_register(PushdownSelectResult, ("decisions", "aggregate", "rows", "ordered"))

# Online rotation progress (repro.migrate): typed frames for the ``migrate``
# wire verbs — public kinds/epochs/phase metadata only, never ciphertext.
_register(
    MigrationStatus,
    (
        "migration_id",
        "table",
        "column",
        "old_kind",
        "new_kind",
        "old_key_epoch",
        "new_key_epoch",
        "state",
        "phase",
        "steps_total",
        "steps_done",
        "partition_versions",
        "error",
    ),
)

# Encrypted builds (the data owner's EncDB output for bulk import) ------------
# ``partition_id`` is deliberately NOT registered: partition metadata is
# server-side bookkeeping (assigned on install, persisted locally) and must
# never cross the wire. The encoder emits registered fields only and the
# decoder rejects unknown field names, so the omission is structural — a
# dictionary always decodes with the dataclass default of 0.
_register(
    EncryptedDictionary,
    (
        "kind",
        "value_type",
        "table_name",
        "column_name",
        "offsets",
        "tail",
        "enc_rnd_offset",
        "encrypted",
    ),
)
_register(
    BuildStats,
    ("kind", "column_length", "unique_values", "dictionary_entries", "bsmax", "rnd_offset"),
)
_register(BuildResult, ("dictionary", "attribute_vector", "stats"))


# Value types are matched by isinstance (IntegerType/VarcharType/DateType all
# reduce to their SQL spelling) rather than exact type, hence the manual entry.
_BY_NAME["ValueType"] = _Registered(
    ValueType,
    ("sql",),
    encode=lambda vt: {"sql": vt.sql_name},
    decode=lambda values: parse_type(values["sql"]),
)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _write_u32(out: bytearray, value: int) -> None:
    out += struct.pack(">I", value)


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_u32(out, len(raw))
    out += raw


def _write_object(out: bytearray, wire_name: str, values: dict) -> None:
    out.append(_T_OBJECT)
    _write_str(out, wire_name)
    _write_u32(out, len(values))
    for field_name, value in values.items():
        _write_str(out, field_name)
        _encode(out, value)


def _encode(out: bytearray, obj: Any) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif isinstance(obj, int) and not isinstance(obj, bool):
        # Arbitrary precision: DH public values are 2048-bit integers.
        magnitude = abs(obj)
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(_T_INT)
        out.append(1 if obj < 0 else 0)
        _write_u32(out, len(raw))
        out += raw
    elif isinstance(obj, float):
        out.append(_T_FLOAT)
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        out.append(_T_STR)
        _write_str(out, obj)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(_T_BYTES)
        _write_u32(out, len(raw))
        out += raw
    elif isinstance(obj, list):
        out.append(_T_LIST)
        _write_u32(out, len(obj))
        for item in obj:
            _encode(out, item)
    elif isinstance(obj, tuple):
        out.append(_T_TUPLE)
        _write_u32(out, len(obj))
        for item in obj:
            _encode(out, item)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        _write_u32(out, len(obj))
        for key, value in obj.items():
            _encode(out, key)
            _encode(out, value)
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        if array.dtype.hasobject:
            raise ProtocolError("object-dtype arrays are not wire-encodable")
        out.append(_T_NDARRAY)
        _write_str(out, str(array.dtype))
        out.append(array.ndim)
        for dim in array.shape:
            _write_u32(out, dim)
        raw = array.tobytes()
        _write_u32(out, len(raw))
        out += raw
    elif isinstance(obj, (np.integer, np.bool_)):
        _encode(out, int(obj) if not isinstance(obj, np.bool_) else bool(obj))
    elif isinstance(obj, np.floating):
        _encode(out, float(obj))
    else:
        wire_name = _BY_TYPE.get(type(obj))
        if wire_name is None and isinstance(obj, ValueType):
            wire_name = "ValueType"
        if wire_name is None:
            raise ProtocolError(
                f"type {type(obj).__name__!r} is not registered for the wire"
            )
        entry = _BY_NAME[wire_name]
        _write_object(out, wire_name, entry.encode(obj))


def encode_payload(obj: Any) -> bytes:
    """Serialize one payload object to codec bytes."""
    out = bytearray()
    _encode(out, obj)
    return bytes(out)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    def _take(self, n: int) -> memoryview:
        if n < 0 or self._pos + n > len(self._view):
            raise ProtocolError("truncated payload")
        chunk = self._view[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def _u8(self) -> int:
        return self._take(1)[0]

    def _u32(self) -> int:
        (value,) = struct.unpack(">I", self._take(4))
        return value

    def _count(self) -> int:
        """A collection count, sanity-bounded by the remaining bytes (every
        element costs at least its one tag byte)."""
        count = self._u32()
        if count > len(self._view) - self._pos:
            raise ProtocolError("collection count exceeds payload size")
        return count

    def _str(self) -> str:
        return bytes(self._take(self._u32())).decode("utf-8")

    def value(self, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            raise ProtocolError("payload nesting too deep")
        tag = self._u8()
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            negative = self._u8()
            magnitude = int.from_bytes(self._take(self._u32()), "big")
            return -magnitude if negative else magnitude
        if tag == _T_FLOAT:
            (value,) = struct.unpack(">d", self._take(8))
            return value
        if tag == _T_STR:
            return self._str()
        if tag == _T_BYTES:
            return bytes(self._take(self._u32()))
        if tag == _T_LIST:
            return [self.value(depth + 1) for _ in range(self._count())]
        if tag == _T_TUPLE:
            return tuple(self.value(depth + 1) for _ in range(self._count()))
        if tag == _T_DICT:
            return {
                self.value(depth + 1): self.value(depth + 1)
                for _ in range(self._count())
            }
        if tag == _T_NDARRAY:
            try:
                dtype = np.dtype(self._str())
            except TypeError as exc:
                raise ProtocolError(f"bad array dtype: {exc}") from None
            if dtype.hasobject:
                raise ProtocolError("object-dtype arrays are not wire-decodable")
            ndim = self._u8()
            shape = tuple(self._u32() for _ in range(ndim))
            raw = bytes(self._take(self._u32()))
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if len(raw) != expected:
                raise ProtocolError("array byte length does not match its shape")
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        if tag == _T_OBJECT:
            wire_name = self._str()
            entry = _BY_NAME.get(wire_name)
            if entry is None:
                raise ProtocolError(f"unregistered wire type {wire_name!r}")
            values = {}
            for _ in range(self._count()):
                field_name = self._str()
                if field_name not in entry.fields:
                    raise ProtocolError(
                        f"unexpected field {field_name!r} for wire type {wire_name!r}"
                    )
                values[field_name] = self.value(depth + 1)
            try:
                return entry.decode(values)
            except ProtocolError:
                raise
            except Exception as exc:
                raise ProtocolError(
                    f"cannot reconstruct wire type {wire_name!r}: {exc}"
                ) from None
        raise ProtocolError(f"unknown codec tag 0x{tag:02x}")

    def finished(self) -> bool:
        return self._pos == len(self._view)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`; rejects trailing garbage."""
    decoder = _Decoder(data)
    value = decoder.value()
    if not decoder.finished():
        raise ProtocolError("trailing bytes after payload")
    return value


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(frame_type: FrameType, payload: bytes) -> bytes:
    """Wrap encoded payload bytes in one wire frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, int(frame_type), len(payload)) + payload


def parse_header(header: bytes) -> tuple[FrameType, int]:
    """Validate a frame header; returns ``(frame_type, payload_length)``."""
    magic, version, raw_type, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError("bad frame magic: not an EncDBDB protocol peer")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    try:
        frame_type = FrameType(raw_type)
    except ValueError:
        raise ProtocolError(f"unknown frame type {raw_type}") from None
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return frame_type, length


def read_frame(read_exact: Callable[[int], bytes]) -> tuple[FrameType, bytes]:
    """Read one frame through a blocking ``read_exact(n)`` callable."""
    frame_type, length = parse_header(read_exact(HEADER.size))
    return frame_type, read_exact(length) if length else b""


async def read_frame_async(reader) -> tuple[FrameType, bytes]:
    """Read one frame from an :class:`asyncio.StreamReader`."""
    frame_type, length = parse_header(await reader.readexactly(HEADER.size))
    payload = await reader.readexactly(length) if length else b""
    return frame_type, payload

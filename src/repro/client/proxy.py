"""The trusted proxy (paper §3.1, §4.2 steps 5 and 14).

Applications speak plain SQL to the proxy. The proxy parses and plans each
statement against its schema mirror, converts every filter to a closed range
in ordinal space, encrypts the range bounds per column key, forwards the
plan to the server, and finally decrypts the returned columns — computing
aggregates, grouping, ordering, and limits on the plaintext, since an
untrusted server cannot do any of that on ciphertext. The whole process is
transparent to the application.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.columnstore.catalog import Catalog
from repro.columnstore.types import ColumnSpec, ValueType
from repro.crypto.pae import Pae
from repro.encdict.enclave_app import encrypt_search_range
from repro.encdict.search import OrdinalRange
from repro.exceptions import QueryError
from repro.sql.ast_nodes import Aggregate

if TYPE_CHECKING:  # the proxy is written against the server *surface* only:
    # in-process it talks to an EncDBDBServer, remotely to a repro.net
    # RemoteServer stub relaying the same calls over the wire.
    from repro.server.dbms import EncDBDBServer
from repro.sql.parser import parse
from repro.sql.planner import (
    CreatePlan,
    DeletePlan,
    EncryptedRangeFilter,
    FilterNode,
    FilterPlan,
    InsertPlan,
    JoinSelectPlan,
    MergePlan,
    Planner,
    PostProcessing,
    PrefixFilter,
    RangeFilter,
    SelectPlan,
    UpdatePlan,
)
from repro.sql.result import QueryResult, ServerResult


class Proxy:
    """Trusted query gateway holding ``SKDB``."""

    def __init__(self, server: "EncDBDBServer", master_key: bytes, pae: Pae) -> None:
        self._server = server
        self._master_key = master_key
        self._pae = pae
        # Schema mirror: table definitions only, never any data.
        self._schema = Catalog()
        self._planner = Planner(self._schema)
        from repro.crypto.drbg import HmacDrbg

        self._salt_rng = HmacDrbg(master_key + b"proxy-join-salt")
        # Analytics pushdown (PR 9): off by default so the proxy-side
        # reference path stays the behavior oracle; ``enable_pushdown()``
        # opts a session in. ``last_pushdown`` records the routing
        # decisions of the most recent pushdown-eligible SELECT.
        self._pushdown_enabled = False
        self.last_pushdown: tuple | None = None

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def enable_pushdown(self, enabled: bool = True) -> None:
        """Toggle in-enclave analytics pushdown for this session (PR 9)."""
        self._pushdown_enabled = enabled

    @property
    def pushdown_enabled(self) -> bool:
        return self._pushdown_enabled

    def execute(self, sql: str):
        """Run one SQL statement; returns a QueryResult or affected count."""
        plan = self._planner.plan(parse(sql))
        if isinstance(plan, CreatePlan):
            return self._execute_create(plan)
        if isinstance(plan, InsertPlan):
            return self._execute_insert(plan)
        if isinstance(plan, SelectPlan):
            return self._execute_select(plan)
        if isinstance(plan, JoinSelectPlan):
            return self._execute_join_select(plan)
        if isinstance(plan, DeletePlan):
            return self._server.execute_delete(
                DeletePlan(plan.table, self._encrypt_filter(plan.table, plan.filter))
            )
        if isinstance(plan, UpdatePlan):
            return self._execute_update(plan)
        if isinstance(plan, MergePlan):
            return self._server.execute_merge(plan)
        raise QueryError(f"unsupported plan {type(plan).__name__}")

    def explain(self, sql: str) -> str:
        """Describe how a statement would execute, without executing it."""
        from repro.sql.planner import describe_plan
        from repro.sql.printer import partition_fanout_lines

        plan = self._planner.plan(parse(sql))
        description = describe_plan(plan, self._schema)
        batch_note = self._describe_batching(plan)
        if batch_note:
            description = f"{description}\n{batch_note}"
        # Partition fan-out is only visible in-process: remote deployments
        # expose a schema mirror without column stores, so the annotation is
        # silently absent there (partition layout never crosses the wire).
        catalog = getattr(self._server, "catalog", None)
        lines = partition_fanout_lines(plan, catalog)
        if catalog is not None:
            # Same visibility rule for the runtime's serial/parallel
            # dispatch state: host facts (cores, past decisions), shown
            # only where the server itself is observable.
            from repro.runtime import dispatch_summary

            lines.append(f"dispatch: {dispatch_summary()}")
        # Cluster deployments surface their shard routing the same way: the
        # router exposes an ``explain_routing`` hook over its shard map
        # (topology facts only — endpoints and partition spans).
        explain_routing = getattr(self._server, "explain_routing", None)
        if explain_routing is not None:
            lines.extend(explain_routing(plan))
        # Online rotations in flight on the plan's table(s): which phase the
        # migration sits in and which partition versions currently serve.
        explain_migrations = getattr(self._server, "explain_migrations", None)
        if explain_migrations is not None:
            from repro.sql.printer import migration_lines

            lines.extend(migration_lines(explain_migrations(plan)))
        # Analytics pushdown routing (PR 9): where each aggregate/ORDER BY
        # clause would run and why. Filters are encrypted first — EXPLAIN
        # plans cross the same trust boundary as executed ones.
        explain_pushdown = getattr(self._server, "explain_pushdown", None)
        if self._pushdown_enabled and explain_pushdown is not None:
            pd_plan = None
            if isinstance(plan, SelectPlan):
                pd_plan = SelectPlan(
                    plan.table,
                    plan.needed_columns,
                    self._encrypt_filter(plan.table, plan.filter),
                    plan.post,
                )
            elif isinstance(plan, JoinSelectPlan):
                pd_plan = JoinSelectPlan(
                    left_table=plan.left_table,
                    right_table=plan.right_table,
                    left_column=plan.left_column,
                    right_column=plan.right_column,
                    left_needed=plan.left_needed,
                    right_needed=plan.right_needed,
                    left_filter=self._encrypt_filter(
                        plan.left_table, plan.left_filter
                    ),
                    right_filter=self._encrypt_filter(
                        plan.right_table, plan.right_filter
                    ),
                    post=plan.post,
                )
            if pd_plan is not None:
                from repro.sql.printer import pushdown_lines

                lines.extend(pushdown_lines(explain_pushdown(pd_plan)))
        if lines:
            description = description + "\n" + "\n".join(lines)
        return description

    def _describe_batching(self, plan) -> str | None:
        """Annotate plans the server will run through ``dict_search_batch``."""
        fastpath = getattr(self._server, "fastpath", None)
        if fastpath is None or not fastpath.batching_enabled:
            return None
        filters: list[tuple[str, FilterPlan | None]] = []
        if isinstance(plan, (SelectPlan, DeletePlan)):
            filters = [(plan.table, plan.filter)]
        elif isinstance(plan, JoinSelectPlan):
            filters = [
                (plan.left_table, plan.left_filter),
                (plan.right_table, plan.right_filter),
            ]
        searches = sum(
            self._count_encrypted_leaves(table_name, filter_plan)
            for table_name, filter_plan in filters
        )
        if searches < 2:
            return None
        return (
            f"fast path: {searches} encrypted dictionary searches planned "
            f"into one dict_search_batch ecall"
        )

    def _count_encrypted_leaves(
        self, table_name: str, filter_plan: FilterPlan | None
    ) -> int:
        if filter_plan is None:
            return 0
        if isinstance(filter_plan, FilterNode):
            return sum(
                self._count_encrypted_leaves(table_name, child)
                for child in filter_plan.children
            )
        if isinstance(filter_plan, (RangeFilter, PrefixFilter, EncryptedRangeFilter)):
            try:
                spec = self._schema.table(table_name).spec(filter_plan.column)
            except Exception:
                return 0
            return 1 if spec.is_encrypted else 0
        return 0

    def register_schema(self, table_name: str, specs: list[ColumnSpec]) -> None:
        """Mirror an externally created table (bulk-load path)."""
        table = self._schema.create_table(table_name, specs)
        table.attach_columns(
            {spec.name: _SchemaOnlyColumn(spec) for spec in specs}, 0
        )

    # ------------------------------------------------------------------
    # Statement handling
    # ------------------------------------------------------------------
    def _execute_create(self, plan: CreatePlan) -> int:
        self._server.create_table(plan)
        self.register_schema(plan.table, list(plan.specs))
        return 0

    def _execute_insert(self, plan: InsertPlan) -> int:
        prepared = [self._prepare_row(plan.table, row) for row in plan.rows]
        return self._server.execute_insert(plan.table, prepared)

    def _prepare_row(self, table_name: str, row: dict) -> dict:
        table = self._schema.table(table_name)
        prepared = {}
        for name, value in row.items():
            spec = table.spec(name)
            if spec.is_encrypted:
                key = self._column_key(table_name, name)
                prepared[name] = self._pae.encrypt(
                    key, spec.value_type.to_bytes(value)
                )
            else:
                prepared[name] = value
        return prepared

    def _execute_select(self, plan: SelectPlan) -> QueryResult:
        encrypted_plan = SelectPlan(
            plan.table,
            plan.needed_columns,
            self._encrypt_filter(plan.table, plan.filter),
            plan.post,
        )
        pushdown = getattr(self._server, "execute_select_pushdown", None)
        if self._pushdown_enabled and pushdown is not None:
            return self._execute_select_pushdown(plan, encrypted_plan, pushdown)
        server_result = self._server.execute_select(encrypted_plan)
        rows = self._decrypt_rows(plan.table, plan.needed_columns, server_result)
        return self._post_process(plan.post, rows)

    def _execute_select_pushdown(
        self, plan: SelectPlan, encrypted_plan: SelectPlan, pushdown
    ) -> QueryResult:
        """Routed SELECT: aggregates may return as padded group frames.

        Whatever the server pushed, the proxy re-applies its full
        post-processing tail — ORDER BY/projection/DISTINCT/LIMIT are
        idempotent over an already-ordered or already-aggregated result, so
        a lying server can reorder nothing and the proxy-side reference
        path stays the correctness oracle.
        """
        result = pushdown(encrypted_plan)
        self.last_pushdown = tuple(result.decisions)
        if result.aggregate is not None:
            rows = self._merge_aggregate_frames(plan, result.aggregate)
            return self._finish_rows(plan.post, rows)
        rows = self._decrypt_rows(plan.table, plan.needed_columns, result.rows)
        return self._post_process(plan.post, rows)

    def _merge_aggregate_frames(self, plan: SelectPlan, aggregate) -> list[dict]:
        """Decrypt padded group frames and merge partial aggregate states.

        Frames arrive PAE-encrypted under the dedicated aggregate transit
        key; dummies (the power-of-two padding) are dropped after
        decryption. Multi-partition and multi-shard executions return one
        frame per (segment, group) — states for the same group key merge
        associatively (COUNT/SUM/AVG add, MIN/MAX fold), preserving
        first-seen order, which is RecordID order end to end and therefore
        matches the proxy-side reference grouping exactly.
        """
        from repro.encdict.enclave_app import AGGREGATE_KEY_COLUMN, decode_group_frame

        key = self._column_key(aggregate.table_name, AGGREGATE_KEY_COLUMN)
        aggs = [
            item for item in plan.post.items if isinstance(item, Aggregate)
        ]
        if tuple(item.label for item in aggs) != tuple(aggregate.labels):
            raise QueryError("aggregate frames do not match the planned query")
        merged: dict[bytes, list[list[int]]] = {}
        for frame in aggregate.frames:
            dummy, key_bytes, states = decode_group_frame(self._pae.decrypt(key, frame))
            if dummy:
                continue
            if len(states) != len(aggs):
                raise QueryError("aggregate frame arity mismatch")
            current = merged.get(key_bytes)
            if current is None:
                merged[key_bytes] = [list(state) for state in states]
                continue
            for item, have, incoming in zip(aggs, current, states):
                present, a, b = incoming
                if not present:
                    continue
                if not have[0]:
                    have[:] = [1, a, b]
                elif item.function == "MIN":
                    have[1] = min(have[1], a)
                elif item.function == "MAX":
                    have[1] = max(have[1], a)
                else:  # COUNT / SUM / AVG states are additive
                    have[1] += a
                    have[2] += b
        group_type = None
        if aggregate.group_column is not None:
            group_type = (
                self._schema.table(aggregate.table_name)
                .spec(aggregate.group_column)
                .value_type
            )
        rows: list[dict] = []
        for key_bytes, states in merged.items():
            row: dict[str, Any] = {}
            if group_type is not None:
                row[aggregate.group_column] = group_type.from_bytes(key_bytes)
            for item, (present, a, b) in zip(aggs, states):
                if not present:
                    row[item.label] = None
                elif item.function == "AVG":
                    row[item.label] = a / b if b else None
                else:
                    row[item.label] = a
            rows.append(row)
        return rows

    def _execute_join_select(self, plan: JoinSelectPlan) -> QueryResult:
        encrypted_plan = JoinSelectPlan(
            left_table=plan.left_table,
            right_table=plan.right_table,
            left_column=plan.left_column,
            right_column=plan.right_column,
            left_needed=plan.left_needed,
            right_needed=plan.right_needed,
            left_filter=self._encrypt_filter(plan.left_table, plan.left_filter),
            right_filter=self._encrypt_filter(plan.right_table, plan.right_filter),
            post=plan.post,
        )
        # Fresh per-query salt: join tokens are unlinkable across queries.
        salt = self._salt_rng.random_bytes(16)
        server_result = self._server.execute_join_select(encrypted_plan, salt)
        decrypted = self._decrypt_result_columns(server_result)
        names = list(decrypted)
        rows = [
            {name: decrypted[name][i] for name in names}
            for i in range(server_result.row_count)
        ]
        return self._post_process(plan.post, rows)

    def _execute_update(self, plan: UpdatePlan) -> int:
        """UPDATE = read the matching rows, invalidate them, re-insert."""
        table = self._schema.table(plan.table)
        read_plan = SelectPlan(
            plan.table,
            tuple(table.column_names),
            self._encrypt_filter(plan.table, plan.filter),
            PostProcessing(items=tuple(table.column_names)),
        )
        server_result = self._server.execute_select(read_plan)
        rows = self._decrypt_rows(plan.table, tuple(table.column_names), server_result)
        if not rows:
            return 0
        self._server.delete_record_ids(
            plan.table, server_result.record_ids
        )
        assignments = dict(plan.assignments)
        new_rows = []
        for row in rows:
            updated = dict(row)
            updated.update(assignments)
            new_rows.append(self._prepare_row(plan.table, updated))
        self._server.execute_insert(plan.table, new_rows)
        return len(new_rows)

    # ------------------------------------------------------------------
    # Filter encryption (paper §4.2 step 5)
    # ------------------------------------------------------------------
    def _column_key(
        self, table_name: str, column_name: str, key_epoch: int = 0
    ) -> bytes:
        """Epoch 0 (the default) doubles as the permanent transit key for
        filter bounds and insert blobs; results decrypt under the storage
        epoch the server stamps on each :class:`ResultColumn` (it advances
        when an online key rotation finalizes)."""
        from repro.crypto.kdf import derive_column_key

        return derive_column_key(
            self._master_key, table_name, column_name, key_epoch=key_epoch
        )

    def _encrypt_filter(
        self, table_name: str, plan: FilterPlan | None
    ) -> FilterPlan | None:
        if plan is None:
            return None
        if isinstance(plan, FilterNode):
            return FilterNode(
                plan.operator,
                tuple(
                    self._encrypt_filter(table_name, child) for child in plan.children
                ),
            )
        if isinstance(plan, RangeFilter):
            spec = self._schema.table(table_name).spec(plan.column)
            if not spec.is_encrypted:
                return plan
            search = self._to_ordinal_range(spec.value_type, plan)
            tau = encrypt_search_range(
                self._pae, self._column_key(table_name, plan.column), search
            )
            return EncryptedRangeFilter(plan.column, tau, negated=plan.negated)
        if isinstance(plan, PrefixFilter):
            spec = self._schema.table(table_name).spec(plan.column)
            if not spec.is_encrypted:
                return plan
            # A LIKE-prefix is just another closed ordinal range: after
            # encryption the server cannot tell it from any other filter.
            low, high = spec.value_type.prefix_ordinal_range(plan.prefix)
            tau = encrypt_search_range(
                self._pae,
                self._column_key(table_name, plan.column),
                OrdinalRange(low, high),
            )
            return EncryptedRangeFilter(plan.column, tau, negated=plan.negated)
        raise QueryError(f"cannot encrypt filter node {type(plan).__name__}")

    @staticmethod
    def _to_ordinal_range(value_type: ValueType, plan: RangeFilter) -> OrdinalRange:
        """Normalize open/exclusive bounds to a closed ordinal interval.

        Exploits that column domains are discrete: ``v > x`` equals
        ``v >= succ(x)``. Open ends become the domain extrema — the
        ``-inf``/``+inf`` placeholders of the paper.
        """
        if plan.low is None:
            low = 0
        else:
            low = value_type.ordinal(plan.low) + (0 if plan.low_inclusive else 1)
        if plan.high is None:
            high = value_type.domain_size - 1
        else:
            high = value_type.ordinal(plan.high) - (0 if plan.high_inclusive else 1)
        return OrdinalRange(low, high)

    # ------------------------------------------------------------------
    # Result decryption and rendering (paper §4.2 step 14)
    # ------------------------------------------------------------------
    def _decrypt_rows(
        self, table_name: str, needed: tuple[str, ...], result: ServerResult
    ) -> list[dict]:
        decrypted = self._decrypt_result_columns(result)
        return [
            {name: decrypted[name][i] for name in needed}
            for i in range(result.row_count)
        ]

    def _decrypt_result_columns(self, result: ServerResult) -> dict[str, list]:
        """Decrypt every returned column using its attached metadata
        (paper §4.2 step 14: the proxy derives each column's key from the
        table/column names the result renderer attached)."""
        decrypted: dict[str, list] = {}
        for key_name, column in result.columns.items():
            if column.encrypted:
                key = self._column_key(
                    column.table_name,
                    column.column_name,
                    getattr(column, "key_epoch", 0),
                )
                value_type = (
                    self._schema.table(column.table_name)
                    .spec(column.column_name)
                    .value_type
                )
                decrypted[key_name] = [
                    value_type.from_bytes(self._pae.decrypt(key, blob))
                    for blob in column.data
                ]
            else:
                decrypted[key_name] = list(column.data)
        return decrypted

    def _post_process(self, post: PostProcessing, rows: list[dict]) -> QueryResult:
        if post.group_by:
            rows = self._group(post, rows)
        elif post.has_aggregates:
            rows = [
                {
                    item.label: _aggregate(item, rows)
                    for item in post.items
                    if isinstance(item, Aggregate)
                }
            ]
        return self._finish_rows(post, rows)

    def _finish_rows(self, post: PostProcessing, rows: list[dict]) -> QueryResult:
        """Shared post-processing tail: ORDER BY, projection, DISTINCT,
        LIMIT. Both the reference path (after proxy-side grouping) and the
        pushdown path (after frame merging) end here, pinning the
        post-processing order to one implementation."""
        if post.order_by:
            for order in reversed(post.order_by):
                rows = sorted(
                    rows, key=lambda row: row[order.column], reverse=order.descending
                )
        column_names = [
            item.label if isinstance(item, Aggregate) else item for item in post.items
        ]
        projected = [
            tuple(row[name] for name in column_names) for row in rows
        ]
        if post.distinct:
            seen = set()
            unique_rows = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            projected = unique_rows
        if post.limit is not None:
            projected = projected[: post.limit]
        return QueryResult(column_names, projected)

    def _group(self, post: PostProcessing, rows: list[dict]) -> list[dict]:
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for row in rows:
            group_key = tuple(row[name] for name in post.group_by)
            if group_key not in groups:
                groups[group_key] = []
                order.append(group_key)
            groups[group_key].append(row)
        rendered = []
        for group_key in order:
            members = groups[group_key]
            out: dict[str, Any] = dict(zip(post.group_by, group_key))
            for item in post.items:
                if isinstance(item, Aggregate):
                    out[item.label] = _aggregate(item, members)
            rendered.append(out)
        return rendered


def _aggregate(item: Aggregate, rows: list[dict]):
    if item.function == "COUNT":
        return len(rows)
    values = [row[item.column] for row in rows]
    if not values:
        return None
    if item.function == "SUM":
        return sum(values)
    if item.function == "AVG":
        return sum(values) / len(values)
    if item.function == "MIN":
        return min(values)
    if item.function == "MAX":
        return max(values)
    raise QueryError(f"unknown aggregate {item.function}")


class _SchemaOnlyColumn:
    """Placeholder column object for the proxy's schema mirror."""

    def __init__(self, spec: ColumnSpec) -> None:
        self.spec = spec

    def __len__(self) -> int:
        return 0

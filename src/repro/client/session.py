"""The application-facing session: one call to stand up a whole deployment.

:class:`EncDBDBSystem` wires together the DBaaS server (with its enclave),
the data owner (key generation, attestation, provisioning), and the trusted
proxy, reproducing the full setup of paper Figure 5. Applications then just
issue SQL::

    system = EncDBDBSystem.create(seed=7)
    system.execute("CREATE TABLE t (name ED5 VARCHAR(30), age ED1 INTEGER)")
    system.execute("INSERT INTO t VALUES ('Jessica', 31)")
    result = system.query("SELECT name FROM t WHERE age >= 30")
"""

from __future__ import annotations

from repro.client.owner import DataOwner
from repro.client.proxy import Proxy
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.server.dbms import EncDBDBServer
from repro.sql.result import QueryResult


class EncDBDBSystem:
    """A fully provisioned EncDBDB deployment (server + owner + proxy)."""

    def __init__(self, server: EncDBDBServer, owner: DataOwner, proxy: Proxy) -> None:
        self.server = server
        self.owner = owner
        self.proxy = proxy

    @classmethod
    def create(
        cls, *, seed: int | bytes | str = 0, fastpath=None
    ) -> "EncDBDBSystem":
        """Stand up a deployment: generate keys, attest, provision.

        ``fastpath`` (a :class:`~repro.sgx.cache.FastPathConfig`) tunes or
        disables the query fast path; the server default enables it.
        """
        rng = HmacDrbg(seed if isinstance(seed, (bytes, str)) else int(seed))
        server = EncDBDBServer(rng=rng.fork("server"), fastpath=fastpath)
        owner = DataOwner(rng=rng.fork("owner"))
        owner.attest_and_provision(server)
        proxy = Proxy(server, owner.master_key, default_pae(rng=rng.fork("proxy")))
        return cls(server, owner, proxy)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        seed: int | bytes | str = 0,
        master_key: bytes | None = None,
        provision: bool | None = None,
        expected_measurement: bytes | None = None,
    ) -> "EncDBDBSystem":
        """Stand up a deployment against a **remote** server over TCP.

        Same surface as :meth:`create`, but the server side is a
        ``repro.net`` deployment: attestation, ``SKDB`` provisioning and all
        query plans travel over real sockets. ``provision`` defaults to
        provisioning only when the remote enclave does not hold a key yet;
        pass ``master_key`` to resume a previously provisioned deployment
        (e.g. after a sealed-storage server restart).
        """
        from repro.net.client import connect_system

        return connect_system(
            host,
            port,
            seed=seed,
            master_key=master_key,
            provision=provision,
            expected_measurement=expected_measurement,
        )

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run any supported SQL statement through the proxy."""
        return self.proxy.execute(sql)

    def query(self, sql: str) -> QueryResult:
        """Run a SELECT and return its :class:`QueryResult`."""
        result = self.proxy.execute(sql)
        if not isinstance(result, QueryResult):
            raise TypeError("query() is only for SELECT statements")
        return result

    def bulk_load(
        self,
        table_name: str,
        columns: dict[str, list],
        *,
        partition_rows: int | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> int:
        """Data-owner bulk import: EncDB locally, deploy ciphertext only.

        ``partition_rows`` selects a partitioned main-store layout (one
        independent encrypted dictionary per fixed-row-count chunk), built
        by the owner's streaming pipeline on ``max_workers`` ``executor``
        workers — artifacts are byte-identical for any worker count.
        """
        return self.owner.deploy_table(
            self.server,
            table_name,
            columns,
            partition_rows=partition_rows,
            max_workers=max_workers,
            executor=executor,
        )

    def merge(self, table_name: str) -> int:
        """Trigger the delta-store merge for one table (paper §4.3)."""
        return self.execute(f"MERGE TABLE {table_name}")

    def migrate(
        self,
        table_name: str,
        column_name: str,
        *,
        new_kind: str | None = None,
        rotate_key: bool = False,
    ):
        """Online rotation driven to completion (``repro.migrate``).

        Starts the rotation of ``table_name.column_name`` to ``new_kind``
        (and/or a fresh storage-key epoch) and runs every phase — queries
        keep flowing throughout; this call just does not return until the
        column is fully adopted. Returns the final list of
        :class:`~repro.migrate.plan.MigrationStatus` (one per server
        endpoint; a single in-process server yields one). Raises
        :class:`~repro.exceptions.QueryError` if any endpoint failed, in
        which case the migration is left in place for ``migrate_rollback``.
        """
        from repro.exceptions import CatalogError, QueryError

        self.server.migrate_start(
            table_name, column_name, new_kind=new_kind, rotate_key=rotate_key
        )
        finished = self.server.migrate_run(table_name, column_name)
        statuses = finished if isinstance(finished, list) else [finished]
        failed = [status for status in statuses if status.state != "done"]
        if failed:
            raise QueryError(
                f"rotation of {table_name}.{column_name} failed: "
                + "; ".join(status.error or status.state for status in failed)
            )
        # Keep the proxy's schema mirror in step with the adopted column so
        # EXPLAIN and spec lookups describe what the server now serves.
        status = statuses[0]
        try:
            spec = self.proxy._schema.table(table_name).spec(column_name)
        except CatalogError:
            spec = None
        if spec is not None:
            from repro.encdict.options import kind_by_name

            spec.adopt_protection(
                kind_by_name(status.new_kind), status.new_key_epoch
            )
        return statuses

    def save(self, path) -> None:
        self.server.save(path)

    def close(self) -> None:
        """Release the underlying transport (no-op for in-process systems)."""
        closer = getattr(self.server, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "EncDBDBSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""The application-facing session: one call to stand up a whole deployment.

:class:`EncDBDBSystem` wires together the DBaaS server (with its enclave),
the data owner (key generation, attestation, provisioning), and the trusted
proxy, reproducing the full setup of paper Figure 5. Applications then just
issue SQL::

    system = EncDBDBSystem.create(seed=7)
    system.execute("CREATE TABLE t (name ED5 VARCHAR(30), age ED1 INTEGER)")
    system.execute("INSERT INTO t VALUES ('Jessica', 31)")
    result = system.query("SELECT name FROM t WHERE age >= 30")
"""

from __future__ import annotations

from repro.client.owner import DataOwner
from repro.client.proxy import Proxy
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.server.dbms import EncDBDBServer
from repro.sql.result import QueryResult


class EncDBDBSystem:
    """A fully provisioned EncDBDB deployment (server + owner + proxy)."""

    def __init__(self, server: EncDBDBServer, owner: DataOwner, proxy: Proxy) -> None:
        self.server = server
        self.owner = owner
        self.proxy = proxy

    @classmethod
    def create(
        cls, *, seed: int | bytes | str = 0, fastpath=None
    ) -> "EncDBDBSystem":
        """Stand up a deployment: generate keys, attest, provision.

        ``fastpath`` (a :class:`~repro.sgx.cache.FastPathConfig`) tunes or
        disables the query fast path; the server default enables it.
        """
        rng = HmacDrbg(seed if isinstance(seed, (bytes, str)) else int(seed))
        server = EncDBDBServer(rng=rng.fork("server"), fastpath=fastpath)
        owner = DataOwner(rng=rng.fork("owner"))
        owner.attest_and_provision(server)
        proxy = Proxy(server, owner.master_key, default_pae(rng=rng.fork("proxy")))
        return cls(server, owner, proxy)

    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run any supported SQL statement through the proxy."""
        return self.proxy.execute(sql)

    def query(self, sql: str) -> QueryResult:
        """Run a SELECT and return its :class:`QueryResult`."""
        result = self.proxy.execute(sql)
        if not isinstance(result, QueryResult):
            raise TypeError("query() is only for SELECT statements")
        return result

    def bulk_load(self, table_name: str, columns: dict[str, list]) -> int:
        """Data-owner bulk import: EncDB locally, deploy ciphertext only."""
        return self.owner.deploy_table(self.server, table_name, columns)

    def merge(self, table_name: str) -> int:
        """Trigger the delta-store merge for one table (paper §4.3)."""
        return self.execute(f"MERGE TABLE {table_name}")

    def save(self, path) -> None:
        self.server.save(path)

"""The trusted side of EncDBDB: data owner, proxy, and application session."""

from repro.client.owner import DataOwner
from repro.client.proxy import Proxy
from repro.client.session import EncDBDBSystem

__all__ = ["DataOwner", "Proxy", "EncDBDBSystem"]

"""The data owner: key generation, attestation, provisioning, EncDB.

Implements the setup phase of paper §4.2: generate ``SKDB`` ( 1 ), attest
the server enclave and deploy the key through the secure channel ( 2 ),
split and encrypt every column locally so plaintext never leaves the
trusted realm ( 3 ), and import the encrypted database at the provider
( 4 ).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.columnstore.types import ColumnSpec
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import Pae, default_pae, pae_gen
from repro.encdict.builder import (
    BuildResult,
    encdb_build,
    encdb_build_partitioned,
)
from repro.encdict.pipeline import BuildPipeline, ColumnPlan
from repro.exceptions import CatalogError
from repro.sgx.channel import SecureChannel

if TYPE_CHECKING:  # the owner only needs the server *surface*; at runtime
    # this may be an in-process EncDBDBServer or a repro.net RemoteServer stub.
    from repro.server.dbms import EncDBDBServer


class DataOwner:
    """Holds ``SKDB`` and prepares/provisions the encrypted database."""

    def __init__(
        self,
        *,
        rng: HmacDrbg | None = None,
        pae: Pae | None = None,
        master_key: bytes | None = None,
    ) -> None:
        self._rng = rng if rng is not None else HmacDrbg(b"data-owner")
        self.pae = pae if pae is not None else default_pae(rng=self._rng.fork("pae"))
        # Step 1: SKDB = PAE_Gen(1^λ) — unless the owner resumes with a key it
        # already generated (e.g. reconnecting to a restarted remote server
        # that unsealed the same SKDB from sealed storage).
        self.master_key = (
            master_key if master_key is not None else pae_gen(rng=self._rng.fork("skdb"))
        )

    def attest_and_provision(
        self, server: "EncDBDBServer", *, expected_measurement: bytes | None = None
    ) -> None:
        """Step 2: attest the enclave, then push ``SKDB`` through the channel.

        ``expected_measurement`` is the enclave identity the owner audited;
        it defaults to the deployed enclave's advertised measurement (in a
        real deployment the owner pins the value out of band).
        """
        expected = (
            expected_measurement
            if expected_measurement is not None
            else server.measurement
        )
        offer = server.enclave_channel_offer()
        channel, client_public = SecureChannel.connect(
            offer,
            server.attestation,
            expected,
            rng=self._rng.fork("channel"),
            pae=self.pae,
        )
        server.enclave_channel_accept(client_public)
        server.enclave_provision(channel.send(self.master_key))

    # ------------------------------------------------------------------
    # Step 3: EncDB on the owner's plaintext database
    # ------------------------------------------------------------------
    def column_key(self, table_name: str, column_name: str) -> bytes:
        return derive_column_key(self.master_key, table_name, column_name)

    def encrypt_column(
        self,
        table_name: str,
        spec: ColumnSpec,
        values: Sequence,
        *,
        partition_rows: int | None = None,
    ) -> BuildResult | list[BuildResult]:
        """Run ``EncDB`` for one column according to its selected kind.

        With ``partition_rows`` the column is built as a list of independent
        per-partition dictionaries (fixed-row-count chunks in row order);
        without it the historical single build is returned.
        """
        if not spec.is_encrypted:
            raise CatalogError(f"column {spec.name!r} is not encrypted")
        if partition_rows is not None:
            return encdb_build_partitioned(
                list(values),
                spec.protection,
                partition_rows=partition_rows,
                value_type=spec.value_type,
                key=self.column_key(table_name, spec.name),
                pae=self.pae,
                rng=self._rng.fork(f"encdb-{table_name}-{spec.name}"),
                bsmax=spec.bsmax,
                table_name=table_name,
                column_name=spec.name,
            )
        return encdb_build(
            list(values),
            spec.protection,
            value_type=spec.value_type,
            key=self.column_key(table_name, spec.name),
            pae=self.pae,
            rng=self._rng.fork(f"encdb-{table_name}-{spec.name}"),
            bsmax=spec.bsmax,
            table_name=table_name,
            column_name=spec.name,
        )

    def build_plans(
        self, server: EncDBDBServer, table_name: str, columns: dict
    ) -> dict[str, ColumnPlan]:
        """The per-column :class:`ColumnPlan`\\ s of one table deployment.

        Column DRBGs are forked in spec order — the same fork sequence the
        serial :meth:`encrypt_column` loop performs — so a pipelined build
        consumes exactly the randomness of a serial one.
        """
        table = server.catalog.table(table_name)
        plans: dict[str, ColumnPlan] = {}
        for spec in table.specs:
            if spec.name not in columns:
                raise CatalogError(f"no data provided for column {spec.name!r}")
            if spec.is_encrypted:
                plans[spec.name] = ColumnPlan(
                    spec,
                    columns[spec.name],
                    key=self.column_key(table_name, spec.name),
                    rng=self._rng.fork(f"encdb-{table_name}-{spec.name}"),
                )
            else:
                plans[spec.name] = ColumnPlan(spec, columns[spec.name])
        return plans

    def deploy_table(
        self,
        server: EncDBDBServer,
        table_name: str,
        columns: dict[str, list],
        *,
        partition_rows: int | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> int:
        """Step 4: split/encrypt every column and bulk-import the table.

        ``partition_rows`` selects a partitioned layout: every column is
        built as fixed-row-count per-partition dictionaries — by the
        streaming build pipeline, whose (column × partition) tasks run on
        ``max_workers`` ``executor`` workers ("serial"/"thread"/"process";
        artifacts are byte-identical across all three). Column sources may
        then be any row-order iterables, including generators. Against an
        in-process server the partitions stream into the column store as
        they complete, so peak transient memory is O(partition); a remote
        server (one ``bulk_load`` payload on the wire) gets the collected
        builds. Without ``partition_rows`` the historical single-dictionary
        build is used. Either way the layout is the owner's choice; the
        server only ever sees finished builds.
        """
        if partition_rows is not None:
            pipeline = BuildPipeline(
                pae=self.pae, max_workers=max_workers, executor=executor
            )
            plans = self.build_plans(server, table_name, columns)
            load_stream = getattr(server, "bulk_load_stream", None)
            if load_stream is not None:
                return load_stream(
                    table_name,
                    pipeline.build_stream(
                        table_name, plans, partition_rows=partition_rows
                    ),
                )
            encrypted_builds, plain_columns = pipeline.build_columns(
                table_name, plans, partition_rows=partition_rows
            )
            return server.bulk_load(
                table_name,
                plain_columns=plain_columns,
                encrypted_builds=encrypted_builds,
            )
        table = server.catalog.table(table_name)
        plain_columns = {}
        encrypted_builds: dict[str, BuildResult | list[BuildResult]] = {}
        for spec in table.specs:
            if spec.name not in columns:
                raise CatalogError(f"no data provided for column {spec.name!r}")
            values = columns[spec.name]
            if spec.is_encrypted:
                encrypted_builds[spec.name] = self.encrypt_column(
                    table_name, spec, values
                )
            else:
                plain_columns[spec.name] = list(values)
        return server.bulk_load(
            table_name,
            plain_columns=plain_columns,
            encrypted_builds=encrypted_builds,
        )

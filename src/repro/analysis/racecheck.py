"""Runtime race detector — dynamic half of the lock-discipline checker.

The static pass (:mod:`repro.analysis.locks`) proves lexical discipline;
this module enforces the same ``# guarded-by:`` contracts while tests
actually hammer the objects from many threads. It patches ``__setattr__``
on instrumented classes so that every *rebinding* of a guarded attribute
checks whether the declared lock is currently held by the writing thread:

- first binding (the attribute is not yet in ``obj.__dict__``) is
  construction and exempt, matching the static ``__init__`` exemption;
- ``RLock`` ownership is checked via ``_is_owned()``; plain ``Lock`` falls
  back to ``locked()`` (held by *someone* — the best a non-owned primitive
  can attest);
- violations are recorded, never raised at the write site, so the racing
  code keeps running and a single test run can surface every undisciplined
  writer. ``RaceReport.assert_clean()`` fails the test afterwards.

Like the static pass, only rebindings are seen — in-place mutation of a
guarded container (``self._entries[k] = v``) bypasses ``__setattr__``.
Between the two halves: the static pass catches in-place writes lexically,
the dynamic pass catches rebindings through aliases and helpers.

Wire-up: ``ENCDBDB_RACE_DETECT=1 python -m pytest ...`` (see
``tests/conftest.py``) instruments the default classes for the whole
session and asserts a clean report at teardown.
"""

from __future__ import annotations

import ast
import inspect
import sys
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.locks import collect_guards


def lock_is_held(lock: Any) -> bool:
    """Best-effort "does the calling thread hold this lock" test."""
    is_owned = getattr(lock, "_is_owned", None)
    if callable(is_owned):
        return bool(is_owned())
    locked = getattr(lock, "locked", None)
    if callable(locked):
        return bool(locked())
    return False


@dataclass(frozen=True)
class RaceViolation:
    """One unlocked rebinding of a guarded attribute."""

    cls: str
    attr: str
    lock_attr: str
    thread: str
    location: str

    def render(self) -> str:
        return (
            f"{self.cls}.{self.attr} rebound without holding "
            f"{self.lock_attr} (thread {self.thread}, at {self.location})"
        )


@dataclass
class RaceReport:
    """Thread-safe accumulator for violations."""

    violations: list[RaceViolation] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, violation: RaceViolation) -> None:
        with self._lock:
            self.violations.append(violation)

    def snapshot(self) -> list[RaceViolation]:
        with self._lock:
            return list(self.violations)

    def drain(self) -> list[RaceViolation]:
        """Return the recorded violations and clear the report.

        Tests that *deliberately* seed a race use this to consume their
        expected violations so a session-scoped detector (which also saw
        the write) does not fail the whole run at teardown.
        """
        with self._lock:
            drained = list(self.violations)
            self.violations.clear()
            return drained

    def assert_clean(self) -> None:
        found = self.snapshot()
        if found:
            rendered = "\n  ".join(v.render() for v in found)
            raise AssertionError(
                f"race detector recorded {len(found)} unlocked write(s):\n"
                f"  {rendered}"
            )


class RaceDetector:
    """Patches ``__setattr__`` on instrumented classes; restorable."""

    def __init__(self) -> None:
        self.report = RaceReport()
        self._patched: list[tuple[type, Any]] = []

    # -- instrumentation ------------------------------------------------

    def instrument(self, cls: type, attr_locks: dict[str, str]) -> None:
        """Watch ``cls`` rebindings of ``attr_locks`` keys.

        ``attr_locks`` maps attribute name -> name of the instance
        attribute holding its lock (e.g. ``{"hits": "_lock"}`` for a
        ``# guarded-by: self._lock`` annotation).
        """
        if not attr_locks:
            return
        original = cls.__setattr__
        had_own = "__setattr__" in cls.__dict__
        report = self.report

        def guarded_setattr(obj: Any, name: str, value: Any) -> None:
            lock_attr = attr_locks.get(name)
            if lock_attr is not None and name in obj.__dict__:
                lock = obj.__dict__.get(lock_attr)
                if lock is not None and not lock_is_held(lock):
                    frame = sys._getframe(1)
                    report.record(
                        RaceViolation(
                            cls=type(obj).__name__,
                            attr=name,
                            lock_attr=lock_attr,
                            thread=threading.current_thread().name,
                            location=f"{frame.f_code.co_filename}:{frame.f_lineno}",
                        )
                    )
            original(obj, name, value)

        cls.__setattr__ = guarded_setattr  # type: ignore[method-assign]
        self._patched.append((cls, original if had_own else None))

    def instrument_module(self, module: Any) -> list[type]:
        """Instrument every class the module annotates with ``guarded-by``.

        Reads the module's own source, reuses the static pass's guard
        collector, and patches each owning class for its ``self.X`` guards
        whose lock is itself a ``self.<lock>`` attribute. Returns the
        classes patched.
        """
        source = inspect.getsource(module)
        tree = ast.parse(source)
        guards, _ = collect_guards(
            tree,
            source,
            module=module.__name__,
            path=getattr(module, "__file__", module.__name__) or module.__name__,
        )
        patched: list[type] = []
        for owner, owner_guards in guards.items():
            if owner is None:
                continue
            cls = getattr(module, owner, None)
            if not isinstance(cls, type):
                continue
            attr_locks = {
                guard.path[1]: guard.lock.split(".", 1)[1]
                for guard in owner_guards
                if len(guard.path) >= 2 and guard.lock.startswith("self.")
            }
            if attr_locks:
                self.instrument(cls, attr_locks)
                patched.append(cls)
        return patched

    def instrument_default(self) -> list[type]:
        """Instrument the annotated shared-state classes of the repo."""
        import repro.crypto.pae

        # lint: allow(boundary-import) justification="the detector instruments annotated classes in-process; it runs in tests only, never in a deployment role"
        import repro.sgx.cache
        import repro.sgx.costs

        patched: list[type] = []
        for module in (repro.sgx.costs, repro.sgx.cache, repro.crypto.pae):
            patched.extend(self.instrument_module(module))
        return patched

    # -- teardown -------------------------------------------------------

    def restore(self) -> None:
        while self._patched:
            cls, original = self._patched.pop()
            if original is None:
                try:
                    del cls.__setattr__  # fall back to the inherited slot
                except AttributeError:
                    pass
            else:
                cls.__setattr__ = original  # type: ignore[method-assign]

    def __enter__(self) -> "RaceDetector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.restore()

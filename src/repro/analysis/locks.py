"""Lock-discipline lint (pass 3) — static half of the race checker.

Shared mutable state is declared with a trailing ``# guarded-by:`` comment
on the line that defines it::

    self._entries: OrderedDict[str, bytes] = OrderedDict()  # guarded-by: self._lock
    _pools: dict[str, Executor] = {}  # guarded-by: _pools_lock

The pass then proves, per module, that every *mutation* of an annotated
attribute — rebinding, augmented assignment, subscript/attribute stores
through it, ``del``, and calls to known mutator methods (``append``,
``pop``, ``update``, ...) — happens lexically inside a ``with <lock>:``
block whose context expression matches the annotation text exactly.

Scope rules:

- ``self.X`` annotations attach to the enclosing class; mutations are
  checked in every method of that class. Prefix matching applies, so
  annotating ``self.stats`` also covers ``self.stats.hits += 1``.
- Plain-name annotations at module level guard module globals.
- ``__init__``/``__post_init__``/``__new__`` are exempt — construction
  happens before the object is shared.
- Reads are never checked; this is a write-discipline pass. Mutations that
  flow through a local alias (``d = self._entries; d[k] = v``) are outside
  its reach — the runtime detector in :mod:`repro.analysis.racecheck`
  backstops those.

An annotation naming a lock the module never defines, or sitting on a line
that defines no attribute, is itself a ``bad-annotation`` finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.astutil import attribute_root_path, iter_comments
from repro.analysis.findings import (
    RULE_BAD_ANNOTATION,
    RULE_UNGUARDED_MUTATION,
    Finding,
)

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w\.]*)")

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "sort",
        "reverse",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "move_to_end",
        "appendleft",
        "popleft",
    }
)

#: Functions where unlocked writes are construction, not sharing.
EXEMPT_FUNCTIONS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class GuardedAttr:
    """One ``# guarded-by:`` declaration.

    ``owner`` is the enclosing class name for ``self.X`` guards and ``None``
    for module globals; ``path`` is the root-first attribute path
    (``("self", "stats")`` / ``("_pools",)``); ``lock`` is the annotation's
    lock expression verbatim.
    """

    owner: str | None
    path: tuple[str, ...]
    lock: str
    line: int


def collect_guards(
    tree: ast.AST, source: str, *, module: str, path: str
) -> tuple[dict[str | None, list[GuardedAttr]], list[Finding]]:
    """Parse ``guarded-by`` annotations and validate them against the AST."""
    annotations: dict[int, str] = {}
    for lineno, text in iter_comments(source):
        match = _GUARDED_RE.search(text)
        if match is not None:
            annotations[lineno] = match.group("lock")

    guards: dict[str | None, list[GuardedAttr]] = {}
    findings: list[Finding] = []
    consumed: set[int] = set()
    module_names: set[str] = set()
    class_attrs: dict[str, set[str]] = {}

    def report(line: int, message: str, symbol: str | None = None) -> None:
        findings.append(
            Finding(
                rule=RULE_BAD_ANNOTATION,
                module=module,
                path=path,
                line=line,
                message=message,
                symbol=symbol,
            )
        )

    def add_guard(owner: str | None, attr_path: tuple[str, ...], line: int) -> None:
        guards.setdefault(owner, []).append(
            GuardedAttr(owner=owner, path=attr_path, lock=annotations[line], line=line)
        )
        consumed.add(line)

    def record_definition(owner: str | None, target: ast.expr, in_func: bool) -> None:
        if isinstance(target, ast.Name):
            if owner is None and not in_func:
                module_names.add(target.id)
            elif owner is not None and not in_func:
                class_attrs.setdefault(owner, set()).add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and owner is not None
        ):
            class_attrs.setdefault(owner, set()).add(target.attr)

    def bind_annotation(owner: str | None, target: ast.expr, node: ast.stmt, in_func: bool) -> None:
        if node.lineno not in annotations or node.lineno in consumed:
            return
        if isinstance(target, ast.Name):
            if owner is None and not in_func:
                add_guard(None, (target.id,), node.lineno)
            elif owner is not None and not in_func:
                # dataclass-style field declaration in the class body
                add_guard(owner, ("self", target.id), node.lineno)
            else:
                report(
                    node.lineno,
                    "guarded-by cannot annotate a function-local name",
                    target.id,
                )
                consumed.add(node.lineno)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if owner is None:
                report(
                    node.lineno,
                    "guarded-by on a self attribute outside any class",
                    target.attr,
                )
                consumed.add(node.lineno)
            else:
                add_guard(owner, ("self", target.attr), node.lineno)

    def walk(node: ast.AST, owner: str | None, in_func: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name, False)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(child, owner, True)
            else:
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        record_definition(owner, target, in_func)
                        bind_annotation(owner, target, child, in_func)
                elif isinstance(child, ast.AnnAssign):
                    record_definition(owner, child.target, in_func)
                    bind_annotation(owner, child.target, child, in_func)
                walk(child, owner, in_func)

    walk(tree, None, False)

    for lineno in sorted(set(annotations) - consumed):
        report(
            lineno,
            "guarded-by comment does not annotate an attribute definition",
        )

    # Every declared lock must actually exist in the module.
    for owner, owner_guards in guards.items():
        for guard in owner_guards:
            lock = guard.lock
            if lock.startswith("self."):
                lock_attr = lock.split(".", 1)[1].split(".")[0]
                known = class_attrs.get(owner or "", set())
                if lock_attr not in known:
                    report(
                        guard.line,
                        f"guarded-by names unknown lock {lock!r}: class "
                        f"{owner} never defines self.{lock_attr}",
                        lock,
                    )
            elif "." not in lock:
                if lock not in module_names:
                    report(
                        guard.line,
                        f"guarded-by names unknown lock {lock!r}: no such "
                        "module-level name",
                        lock,
                    )

    return guards, findings


def _mutation_targets(node: ast.AST) -> list[ast.expr]:
    """Expressions this node mutates (assignment targets, mutator receivers)."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AugAssign):
        return [node.target]
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in MUTATOR_METHODS
    ):
        return [node.func.value]
    return []


def check(
    tree: ast.AST, *, module: str, path: str, source: str
) -> list[Finding]:
    guards, findings = collect_guards(tree, source, module=module, path=path)
    if not guards:
        return findings

    def matching_guard(
        owner: str | None, mut_path: tuple[str, ...]
    ) -> GuardedAttr | None:
        candidates: list[GuardedAttr] = []
        if mut_path[0] == "self" and owner is not None:
            candidates.extend(guards.get(owner, ()))
        candidates.extend(g for g in guards.get(None, ()) if g.path[0] != "self")
        for guard in candidates:
            if mut_path[: len(guard.path)] == guard.path:
                return guard
        return None

    def scan(
        node: ast.AST,
        owner: str | None,
        func: str | None,
        exempt: bool,
        held: frozenset[str],
    ) -> None:
        if func is not None and not exempt:
            for target in _mutation_targets(node):
                mut_path = attribute_root_path(target)
                if mut_path is None:
                    continue
                guard = matching_guard(owner, mut_path)
                if guard is not None and guard.lock not in held:
                    findings.append(
                        Finding(
                            rule=RULE_UNGUARDED_MUTATION,
                            module=module,
                            path=path,
                            line=getattr(node, "lineno", guard.line),
                            message=(
                                f"{'.'.join(mut_path)} is guarded by "
                                f"{guard.lock} (declared line {guard.line}) "
                                f"but {func} mutates it outside "
                                f"'with {guard.lock}:'"
                            ),
                            symbol=".".join(guard.path),
                        )
                    )

        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                scan(child, node.name, None, False, frozenset())
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fresh = node.name in EXEMPT_FUNCTIONS
            for child in node.body:
                scan(child, owner, node.name, fresh, frozenset())
        elif isinstance(node, ast.Lambda):
            scan(node.body, owner, func or "<lambda>", False, frozenset())
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = frozenset(
                ast.unparse(item.context_expr) for item in node.items
            )
            for item in node.items:
                scan(item, owner, func, exempt, held)
            for child in node.body:
                scan(child, owner, func, exempt, held | acquired)
        else:
            for child in ast.iter_child_nodes(node):
                scan(child, owner, func, exempt, held)

    scan(tree, None, None, False, frozenset())
    return findings

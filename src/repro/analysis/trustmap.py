"""The declarative trust map of the EncDBDB reproduction.

EncDBDB's security argument (paper §3-§4, DESIGN.md §8) is that the
untrusted DBMS reaches secrets only through the enclave's registered ecall
surface. This module writes that argument down as data: every ``repro``
module is assigned a trust level, trusted modules export an explicit symbol
surface, and the registered ecall names are pinned. The passes in
:mod:`repro.analysis.boundary` machine-check source code against this map;
``tests/analysis`` asserts the map itself stays in sync with the runtime
(e.g. :data:`REGISTERED_ECALLS` vs. ``EncDBDBEnclave.ecall_names()``).

Trust levels
============

- ``enclave`` — code that runs inside the (simulated) enclave or implements
  its isolation substrate. May import anything; IS the TCB.
- ``crypto``  — key material and primitives (``repro.crypto``). TCB.
- ``owner``   — the data owner / trusted proxy side (paper Fig. 2 left):
  legitimately holds ``SKDB`` and builds plaintext columns, but must still
  never touch enclave internals. May import ``crypto`` freely plus the
  owner surface of enclave modules.
- ``untrusted`` — the DBaaS provider side: column store, SQL engine,
  server, network front end, benchmarks. May import trusted modules only
  through :data:`UNTRUSTED_SURFACE` and must never reference the forbidden
  symbols below.
- ``public``  — side-effect-free modules (exceptions, tuning knobs, cost
  accounting, wire-safe data types) importable from anywhere; their own
  code is held to the same rules as ``untrusted``.

Unmapped modules default to ``untrusted`` — the map fails closed.
"""

from __future__ import annotations

TRUST_ENCLAVE = "enclave"
TRUST_CRYPTO = "crypto"
TRUST_OWNER = "owner"
TRUST_UNTRUSTED = "untrusted"
TRUST_PUBLIC = "public"

#: Module-prefix -> trust level. Longest prefix wins; the bare ``"repro"``
#: entry applies to the package root module only (never as a fallback), so
#: a new unmapped subpackage lands in ``untrusted`` until classified here.
MODULE_TRUST: dict[str, str] = {
    "repro": TRUST_OWNER,  # package facade (lazily re-exports the system API)
    "repro.exceptions": TRUST_PUBLIC,
    "repro.runtime": TRUST_PUBLIC,
    "repro.analysis": TRUST_OWNER,  # dev/CI tooling; runs owner-side only
    "repro.cli": TRUST_OWNER,
    "repro.client": TRUST_OWNER,
    # Cluster layer (PR 7): coordinator/router/loadgen run in the data
    # owner's realm — they hold connections that carry provisioning and
    # relay the enclave-to-enclave key replication, but never key material
    # in the clear. The shard map is pure topology data (endpoints and
    # partition ranges), importable from anywhere.
    "repro.cluster": TRUST_OWNER,  # package facade
    "repro.cluster.coordinator": TRUST_OWNER,
    "repro.cluster.router": TRUST_OWNER,
    "repro.cluster.loadgen": TRUST_OWNER,
    "repro.cluster.shardmap": TRUST_PUBLIC,
    "repro.crypto": TRUST_CRYPTO,
    "repro.sgx": TRUST_ENCLAVE,
    "repro.sgx.costs": TRUST_PUBLIC,
    "repro.sgx.memory": TRUST_PUBLIC,
    "repro.sgx.attestation": TRUST_PUBLIC,
    "repro.encdict": TRUST_OWNER,  # package facade re-exporting EncDB helpers
    "repro.encdict.enclave_app": TRUST_ENCLAVE,
    "repro.encdict.search": TRUST_ENCLAVE,
    "repro.encdict.kernels": TRUST_ENCLAVE,  # vectorized search kernels
    "repro.encdict.builder": TRUST_OWNER,
    "repro.encdict.pipeline": TRUST_OWNER,
    "repro.encdict.buckets": TRUST_OWNER,
    "repro.encdict.encode": TRUST_OWNER,
    "repro.encdict.options": TRUST_PUBLIC,
    "repro.encdict.dictionary": TRUST_PUBLIC,  # ciphertext containers only
    "repro.encdict.attrvect": TRUST_UNTRUSTED,
    "repro.columnstore": TRUST_UNTRUSTED,
    # Online rotation (PR 8): the migration engine runs on the DBaaS side —
    # it schedules shadow rebuilds and swaps ciphertext partitions, but all
    # re-encryption happens inside the enclave via the rotate_* ecalls, so
    # the module never names key material.
    "repro.migrate": TRUST_UNTRUSTED,  # package facade
    "repro.migrate.plan": TRUST_UNTRUSTED,
    "repro.migrate.runner": TRUST_UNTRUSTED,
    "repro.sql": TRUST_UNTRUSTED,
    "repro.server": TRUST_UNTRUSTED,
    "repro.net": TRUST_OWNER,  # package facade re-exporting client helpers
    "repro.net.server": TRUST_UNTRUSTED,
    "repro.net.protocol": TRUST_UNTRUSTED,
    "repro.net.errors": TRUST_UNTRUSTED,
    "repro.net.client": TRUST_OWNER,
    "repro.security": TRUST_UNTRUSTED,
    # Benchmark workloads run against the *public* query API but execute on
    # provider hardware in the evaluation topology; held to untrusted rules.
    "repro.workloads": TRUST_UNTRUSTED,  # package facade
    "repro.workloads.datasets": TRUST_UNTRUSTED,
    "repro.workloads.evaluate": TRUST_UNTRUSTED,
    "repro.workloads.generator": TRUST_UNTRUSTED,
    "repro.workloads.queries": TRUST_UNTRUSTED,
    "repro.workloads.tpch": TRUST_UNTRUSTED,
    "repro.bench": TRUST_UNTRUSTED,
}

#: Levels whose own code is checked under the untrusted import/symbol rules.
RESTRICTED_LEVELS = frozenset({TRUST_UNTRUSTED, TRUST_PUBLIC})

#: Levels whose exports untrusted code may only reach through a surface.
TRUSTED_LEVELS = frozenset({TRUST_ENCLAVE, TRUST_CRYPTO, TRUST_OWNER})

#: Symbols untrusted/public modules may import from trusted modules — the
#: registered boundary surface. Everything else is a violation. The surface
#: deliberately contains only: the ecall host handle, enclave-load and
#: attestation artifacts, fast-path configuration, wire-safe ciphertext
#: containers, and key-less crypto interfaces (no ``pae_gen``, no KDF).
UNTRUSTED_SURFACE: dict[str, frozenset[str]] = {
    "repro.crypto.drbg": frozenset({"HmacDrbg"}),
    "repro.crypto.pae": frozenset(
        {
            "Pae",
            "default_pae",
            "PurePythonPae",
            "LibraryPae",
            "PAE_KEY_BYTES",
            "PAE_NONCE_BYTES",
            "PAE_TAG_BYTES",
            "PAE_OVERHEAD_BYTES",
        }
    ),
    # the host loads and measures the enclave binary, so the class object
    # and its measurement helper sit on the surface; *state* stays behind
    # the ecall interface (ENCLAVE_INTERNALS below).
    "repro.sgx.enclave": frozenset({"EnclaveHost", "Enclave", "measure_enclave_class"}),
    "repro.sgx.cache": frozenset({"FastPathConfig", "CacheStats"}),
    "repro.sgx.channel": frozenset({"ChannelOffer"}),
    "repro.encdict.enclave_app": frozenset({"EncDBDBEnclave"}),
    "repro.encdict.search": frozenset(
        {"OrdinalRange", "SearchResult", "DUMMY_RANGE", "ORDINAL_BOUND_BYTES"}
    ),
    "repro.encdict.builder": frozenset({"BuildResult", "BuildStats"}),
}

#: Additional symbols ``owner``-level modules may import from ``enclave``
#: modules (the data owner runs attestation, the secure channel, and the
#: proxy-side query encryption — paper §4.2 steps 1-5).
OWNER_SURFACE: dict[str, frozenset[str]] = {
    "repro.sgx.channel": frozenset({"SecureChannel"}),
    "repro.sgx.cache": frozenset({"EnclaveLruCache"}),  # analysis tooling
    "repro.encdict.enclave_app": frozenset(
        {"encrypt_search_range", "decode_group_frame", "AGGREGATE_KEY_COLUMN"}
    ),
    "repro.encdict.search": frozenset({"plain_search", "DictionarySearcher"}),
}

#: Key/plaintext-bearing identifiers untrusted/public code must never name
#: (as a variable, attribute, parameter, or imported symbol). String
#: literals and comments are naturally exempt — the paper's protocol names
#: (``provision_master_key``) travel as strings through ``ecall``.
KEY_SYMBOLS = frozenset(
    {
        "SKDB",
        "skdb",
        "_skdb",
        "master_key",
        "_MASTER_KEY",
        "pae_gen",
        "derive_column_key",
        "derive_rotation_seed",
        "hkdf_sha256",
        "seal",
        "unseal",
        "sealing_key",
    }
)

#: Enclave-internal members nothing outside the enclave (owner included)
#: may reference: the protected store, dispatch internals, and in-enclave
#: randomness. Reaching these from host code would be reading EPC memory.
ENCLAVE_INTERNALS = frozenset(
    {
        "protected_get",
        "protected_set",
        "protected_has",
        "_protected",
        "_dispatch",
        "_require_inside",
        "enclave_random_bytes",
        "enclave_randint",
    }
)

#: The registered ecall surface of :class:`repro.encdict.enclave_app.
#: EncDBDBEnclave`, pinned statically so the boundary pass can verify the
#: names untrusted code passes to ``EnclaveHost.ecall``. A test asserts this
#: tuple equals ``EncDBDBEnclave.ecall_names()`` — editing the enclave
#: without updating the map (or vice versa) fails CI.
REGISTERED_ECALLS: tuple[str, ...] = (
    "channel_offer",
    "channel_accept",
    "provision_master_key",
    "replicate_master_key",  # primary-side cluster key hand-off (PR 7)
    "is_provisioned",
    "seal_master_key",
    "restore_master_key",
    "dict_search",
    "dict_search_batch",
    "join_tokens",
    "reencrypt_for_delta",
    "rebuild_for_merge",
    "rotate_partition",  # online rotation shadow rebuild (PR 8)
    "rotate_delta",  # atomic delta re-seal at a key-rotation flip (PR 8)
    "aggregate_groups",  # ordinal-space GROUP BY / aggregates (PR 9)
)

#: Module prefixes whose builds must be reproducible from caller-provided
#: DRBGs (PR 4 determinism): ambient randomness here breaks bit-for-bit
#: parallel/serial identity and, worse, un-audited IV sourcing.
DETERMINISTIC_PREFIXES: tuple[str, ...] = (
    "repro.encdict",
    "repro.columnstore",
    "repro.crypto",
    "repro.sgx",
)

#: Plaintext-bearing symbols that must never appear in ``repro.net`` —
#: nothing that can hold or rebuild plaintext column data may become
#: serializable into a wire frame.
WIRE_PLAINTEXT_SYMBOLS = frozenset(
    {
        "encdb_build",
        "encdb_build_partitioned",
        "derive_partition_rngs",
        "split_column",
        "DictionaryEncodedColumn",
        "plain_search",
    }
)


def trust_level(module: str) -> str:
    """Resolve a dotted module name to its trust level (fail-closed)."""
    parts = module.split(".")
    for width in range(len(parts), 0, -1):
        prefix = ".".join(parts[:width])
        if prefix == "repro" and module != "repro":
            # The root entry describes the facade module itself, never a
            # fallback for unclassified subpackages.
            continue
        level = MODULE_TRUST.get(prefix)
        if level is not None:
            return level
    return TRUST_UNTRUSTED


def allowed_symbols(importer_level: str, imported_module: str) -> frozenset[str]:
    """Symbols ``importer_level`` code may import from ``imported_module``."""
    surface = UNTRUSTED_SURFACE.get(imported_module, frozenset())
    if importer_level == TRUST_OWNER:
        surface = surface | OWNER_SURFACE.get(imported_module, frozenset())
    return surface

"""Crypto-discipline lint (pass 2).

Three invariants the build/query determinism and the wire format rest on:

- **DRBG-only randomness in deterministic paths.** PR 4 made parallel
  builds bit-for-bit identical to serial ones by sourcing every IV, shuffle
  and rotation offset from caller-provided DRBGs. Any ``os.urandom`` /
  ``random`` / ``secrets`` / ``numpy.random`` call inside
  ``trustmap.DETERMINISTIC_PREFIXES`` silently breaks that property.
- **No PAE bypass.** All AES/GCM use goes through the counted
  :class:`~repro.crypto.pae.Pae` interface — its operation counters feed
  the cost model, and its IV draws are what the DRBG discipline audits.
  Direct use of ``repro.crypto.gcm``/``repro.crypto.aes`` or of PAE
  internals (``_seal``/``_open``/``_draw_iv``) outside ``repro.crypto``
  is uncounted crypto.
- **No plaintext on the wire.** ``repro.net`` must not import symbols that
  hold or rebuild plaintext column data, and nothing in ``src`` may use
  ambient object serialization (``pickle``/``marshal``/``shelve``/
  ``dill``) — frames carry registered ciphertext containers only.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import resolve_import, walk_runtime
from repro.analysis.findings import (
    RULE_NONDET_RANDOMNESS,
    RULE_PAE_BYPASS,
    RULE_UNSAFE_SERIALIZATION,
    RULE_WIRE_PLAINTEXT,
    Finding,
)
from repro.analysis.trustmap import DETERMINISTIC_PREFIXES, WIRE_PLAINTEXT_SYMBOLS

#: Module names whose import is ambient (non-DRBG) randomness.
_RANDOM_MODULES = frozenset({"random", "secrets"})

#: Module names that deserialize arbitrary objects.
_SERIALIZATION_MODULES = frozenset({"pickle", "marshal", "shelve", "dill"})

#: Primitive modules only ``repro.crypto`` itself may touch.
_PRIMITIVE_MODULES = frozenset({"repro.crypto.gcm", "repro.crypto.aes"})

#: PAE/primitive internals whose mention outside ``repro.crypto`` bypasses
#: the counted interface.
_PRIMITIVE_SYMBOLS = frozenset(
    {"AesGcm", "Aes128", "ghash", "_seal", "_open", "_draw_iv", "_gcm", "_aead"}
)


def _in_deterministic_path(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in DETERMINISTIC_PREFIXES
    )


def check(tree: ast.AST, *, module: str, path: str) -> list[Finding]:
    findings: list[Finding] = []
    deterministic = _in_deterministic_path(module)
    in_crypto = module == "repro.crypto" or module.startswith("repro.crypto.")
    in_net = module == "repro.net" or module.startswith("repro.net.")

    def report(rule: str, node: ast.AST, message: str, symbol: str | None) -> None:
        findings.append(
            Finding(
                rule=rule,
                module=module,
                path=path,
                line=getattr(node, "lineno", 1),
                message=message,
                symbol=symbol,
            )
        )

    for node in walk_runtime(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _SERIALIZATION_MODULES:
                    report(
                        RULE_UNSAFE_SERIALIZATION,
                        node,
                        f"ambient object serialization ({alias.name}) — wire "
                        "frames and storage carry registered types only",
                        alias.name,
                    )
                if deterministic and root in _RANDOM_MODULES:
                    report(
                        RULE_NONDET_RANDOMNESS,
                        node,
                        f"{module} is a deterministic build path; "
                        f"{alias.name!r} randomness must come from a caller "
                        "DRBG instead",
                        alias.name,
                    )
                if not in_crypto and alias.name in _PRIMITIVE_MODULES:
                    report(
                        RULE_PAE_BYPASS,
                        node,
                        f"{alias.name} may only be used inside repro.crypto; "
                        "go through the counted Pae interface",
                        alias.name,
                    )
        elif isinstance(node, ast.ImportFrom):
            target = resolve_import(node, module) or ""
            root = target.split(".")[0]
            if root in _SERIALIZATION_MODULES:
                report(
                    RULE_UNSAFE_SERIALIZATION,
                    node,
                    f"ambient object serialization ({target}) — wire frames "
                    "and storage carry registered types only",
                    target,
                )
            if deterministic and root in _RANDOM_MODULES:
                report(
                    RULE_NONDET_RANDOMNESS,
                    node,
                    f"{module} is a deterministic build path; {target!r} "
                    "randomness must come from a caller DRBG instead",
                    target,
                )
            if deterministic and target == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        report(
                            RULE_NONDET_RANDOMNESS,
                            node,
                            "os.urandom in a deterministic build path; IVs "
                            "and keys here must come from a caller DRBG",
                            "os.urandom",
                        )
            if not in_crypto and target in _PRIMITIVE_MODULES:
                for alias in node.names:
                    report(
                        RULE_PAE_BYPASS,
                        node,
                        f"{alias.name!r} imported from {target}; primitives "
                        "may only be used via the counted Pae interface",
                        alias.name,
                    )
            if in_net:
                for alias in node.names:
                    if alias.name in WIRE_PLAINTEXT_SYMBOLS:
                        report(
                            RULE_WIRE_PLAINTEXT,
                            node,
                            f"plaintext-bearing symbol {alias.name!r} "
                            "imported into repro.net; plaintext types must "
                            "never become serializable into frames",
                            alias.name,
                        )
        elif isinstance(node, ast.Attribute):
            # os.urandom / np.random / random.* attribute chains.
            if (
                deterministic
                and node.attr == "urandom"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                report(
                    RULE_NONDET_RANDOMNESS,
                    node,
                    "os.urandom in a deterministic build path; IVs and keys "
                    "here must come from a caller DRBG",
                    "os.urandom",
                )
            if (
                deterministic
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
            ):
                report(
                    RULE_NONDET_RANDOMNESS,
                    node,
                    "numpy.random in a deterministic build path; use the "
                    "caller's HmacDrbg stream instead",
                    "numpy.random",
                )
            if not in_crypto and node.attr in _PRIMITIVE_SYMBOLS:
                report(
                    RULE_PAE_BYPASS,
                    node,
                    f"reference to PAE/primitive internal {node.attr!r} "
                    "outside repro.crypto bypasses the counted interface",
                    node.attr,
                )
        elif isinstance(node, ast.Name):
            if not in_crypto and node.id in ("AesGcm", "Aes128", "ghash"):
                report(
                    RULE_PAE_BYPASS,
                    node,
                    f"direct use of primitive {node.id!r} outside "
                    "repro.crypto; go through the counted Pae interface",
                    node.id,
                )

    return findings

"""CLI: ``python -m repro.analysis [paths...] [--root src] [--format ...]``.

Exit status 0 when every finding is suppressed (with justification), 1 when
any active finding remains, 2 on usage/parse errors — so CI can gate on it
directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import analyze_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Trust-boundary, crypto-discipline and lock-discipline linter "
            "for the EncDBDB reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the source root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("src"),
        help="source root used to map file paths to module names",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    args = parser.parse_args(argv)

    paths = args.paths or [args.root]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        report = analyze_paths(paths, root=args.root)
    except SyntaxError as exc:
        print(f"error: {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return 2

    if args.format == "json":
        rendered = json.dumps(report.to_json(), indent=2)
    else:
        rendered = report.render()

    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)

    return 1 if report.active else 0


if __name__ == "__main__":
    sys.exit(main())

"""Small AST helpers shared by the analysis passes."""

from __future__ import annotations

import ast
import io
import tokenize
from typing import Iterator


def iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, text)`` for every real ``#`` comment token.

    Directive parsing (``guarded-by``, ``lint: allow``, ``lint-module``)
    must go through the tokenizer rather than raw line scanning, otherwise
    docstrings *describing* the directives would activate them.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


def is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` tests."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def walk_runtime(node: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk`, but skips ``if TYPE_CHECKING:`` bodies.

    Imports under ``TYPE_CHECKING`` exist for annotations only and give the
    importing module no runtime access to the imported object, so boundary
    rules do not apply to them.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.If) and is_type_checking_test(current.test):
            stack.extend(current.orelse)
            continue
        stack.extend(ast.iter_child_nodes(current))


def resolve_import(node: ast.ImportFrom, importer: str) -> str | None:
    """Absolute dotted module a ``from ... import`` statement targets.

    Relative imports are resolved against the importing module's package;
    returns ``None`` when the relative depth escapes the package root.
    """
    if node.level == 0:
        return node.module
    parts = importer.split(".")
    # ``from . import x`` inside package ``a.b`` targets ``a.b`` when the
    # importer is a package __init__; we treat the importer name itself as
    # the package (engine maps __init__.py files to their package name).
    if node.level > len(parts):
        return None
    prefix = ".".join(parts[: len(parts) - (node.level - 1)])
    if not prefix:
        return node.module
    return f"{prefix}.{node.module}" if node.module else prefix


def attribute_root_path(node: ast.expr) -> tuple[str, ...] | None:
    """The dotted name path of an attribute/subscript chain, root first.

    ``self.stats.hits`` -> ``("self", "stats", "hits")``;
    ``self._entries[key]`` -> ``("self", "_entries")`` (subscripts collapse
    onto their value). Returns ``None`` when the root is not a plain name.
    """
    parts: list[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return tuple(reversed(parts))
        else:
            return None

"""Analysis engine: file walking, module naming, pass orchestration.

``analyze_paths`` maps each ``.py`` file to its dotted ``repro`` module
name, runs the three passes (:mod:`~repro.analysis.boundary`,
:mod:`~repro.analysis.cryptolint`, :mod:`~repro.analysis.locks`), resolves
inline suppressions, and aggregates everything into a :class:`Report`.

Module naming: a file under the source root becomes its dotted path
(``src/repro/sgx/cache.py`` -> ``repro.sgx.cache``; ``__init__.py`` maps to
the package itself). Files outside the root — lint fixtures, scratch
reproductions — declare their identity with a directive comment in the
first few lines::

    # lint-module: repro.columnstore.evil_boundary

so they are held to exactly the trust level that module name implies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis import boundary, cryptolint, leakage, locks, taint
from repro.analysis.astutil import iter_comments
from repro.analysis.findings import FileReport, Finding
from repro.analysis.suppressions import (
    FILE_SCOPE_LINES,
    apply_suppressions,
    parse_suppressions,
)

SCHEMA_VERSION = 1

_MODULE_DIRECTIVE_RE = re.compile(r"#\s*lint-module:\s*(?P<name>[\w\.]+)")


def module_name_for(path: Path, root: Path) -> str | None:
    """Dotted module name of ``path`` relative to the source root."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(relative.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if not parts:
        return None
    return ".".join(parts)


def declared_module(source: str) -> str | None:
    """The ``# lint-module:`` directive, if the file carries one."""
    for lineno, text in iter_comments(source):
        if lineno > FILE_SCOPE_LINES:
            break
        match = _MODULE_DIRECTIVE_RE.search(text)
        if match is not None:
            return match.group("name")
    return None


@dataclass
class Report:
    """Aggregate result of one analysis run."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        return [finding for file in self.files for finding in file.findings]

    @property
    def active(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "files_analyzed": len(self.files),
            "findings": [finding.to_json() for finding in self.findings],
            "summary": {
                "total": len(self.findings),
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "by_rule": self.by_rule(),
            },
        }

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = self.by_rule()
        lines.append(
            f"{len(self.files)} file(s) analyzed: "
            f"{len(self.active)} active finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        if summary:
            lines.append(
                "active by rule: "
                + ", ".join(f"{rule}={count}" for rule, count in summary.items())
            )
        return "\n".join(lines)


def analyze_source(source: str, *, module: str, path: str) -> list[Finding]:
    """Run every pass over one file's source and resolve suppressions."""
    tree = ast.parse(source, filename=path)
    index = parse_suppressions(source, path=path, module=module)
    findings: list[Finding] = []
    findings.extend(boundary.check(tree, module=module, path=path))
    findings.extend(cryptolint.check(tree, module=module, path=path))
    findings.extend(locks.check(tree, module=module, path=path, source=source))
    findings.extend(taint.check(tree, module=module, path=path))
    findings.extend(leakage.check(tree, module=module, path=path))
    apply_suppressions(findings, index)
    findings.extend(index.findings)
    findings.sort(key=lambda finding: (finding.line, finding.rule))
    return findings


def analyze_file(path: Path, root: Path) -> FileReport:
    source = path.read_text(encoding="utf-8")
    module = declared_module(source) or module_name_for(path, root)
    if module is None:
        module = path.stem
    findings = analyze_source(source, module=module, path=str(path))
    return FileReport(path=str(path), module=module, findings=findings)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(paths: Iterable[Path], *, root: Path) -> Report:
    report = Report()
    for file_path in iter_python_files(paths):
        report.files.append(analyze_file(file_path, root))
    return report

"""Inline suppression comments with mandatory justifications.

A finding may only be silenced where a human wrote down *why* the rule does
not apply. Two forms are recognized:

- **Line scope** — on the finding's line or the line directly above it::

      key = pae_gen()  # lint: allow(forbidden-symbol) justification="bench plays the data owner"

- **File scope** — anywhere in the first ``FILE_SCOPE_LINES`` lines::

      # lint: allow-file(boundary-import) justification="harness drives every deployment role"

Several rules can share one comment: ``allow(rule-a, rule-b)``. An ``allow``
without a non-empty ``justification="..."`` is itself reported as a
:data:`~repro.analysis.findings.RULE_BAD_SUPPRESSION` finding and silences
nothing — the mechanism cannot be used to hide its own misuse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.astutil import iter_comments
from repro.analysis.findings import ALL_RULES, RULE_BAD_SUPPRESSION, Finding

#: File-scope ``allow-file`` comments must appear within this many lines of
#: the top of the file, next to the module docstring they annotate.
FILE_SCOPE_LINES = 15

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow(?P<file>-file)?\s*\(\s*(?P<rules>[a-z0-9_,\-\s]+?)\s*\)"
    r"(?P<rest>.*)$"
)
_JUSTIFICATION_RE = re.compile(r'justification\s*=\s*"(?P<text>[^"]*)"')


@dataclass
class Suppression:
    """One parsed ``lint: allow`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    file_scope: bool = False


@dataclass
class SuppressionIndex:
    """Suppressions of one file plus findings about malformed ones."""

    suppressions: list[Suppression] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    def lookup(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` at ``line``, if any.

        Line-scope comments cover their own line and the line below them
        (so a comment can sit above a long statement); file-scope comments
        cover the whole file.
        """
        for suppression in self.suppressions:
            if rule not in suppression.rules:
                continue
            if suppression.file_scope:
                return suppression
            if line in (suppression.line, suppression.line + 1):
                return suppression
        return None


def parse_suppressions(source: str, *, path: str, module: str) -> SuppressionIndex:
    """Extract every ``lint: allow`` comment (and complain about bad ones)."""
    index = SuppressionIndex()
    for lineno, text in iter_comments(source):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        unknown = [rule for rule in rules if rule not in ALL_RULES]
        justification_match = _JUSTIFICATION_RE.search(match.group("rest"))
        justification = (
            justification_match.group("text").strip() if justification_match else ""
        )
        problem: str | None = None
        if not rules:
            problem = "suppression lists no rules"
        elif unknown:
            problem = f"suppression names unknown rule(s): {', '.join(unknown)}"
        elif RULE_BAD_SUPPRESSION in rules:
            problem = f"{RULE_BAD_SUPPRESSION!r} cannot be suppressed"
        elif not justification:
            problem = 'suppression is missing its mandatory justification="..."'
        if problem is not None:
            index.findings.append(
                Finding(
                    rule=RULE_BAD_SUPPRESSION,
                    module=module,
                    path=path,
                    line=lineno,
                    message=problem,
                )
            )
            continue
        file_scope = match.group("file") is not None
        if file_scope and lineno > FILE_SCOPE_LINES:
            index.findings.append(
                Finding(
                    rule=RULE_BAD_SUPPRESSION,
                    module=module,
                    path=path,
                    line=lineno,
                    message=(
                        "allow-file suppressions must sit in the first "
                        f"{FILE_SCOPE_LINES} lines of the file"
                    ),
                )
            )
            continue
        index.suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                justification=justification,
                file_scope=file_scope,
            )
        )
    return index


def apply_suppressions(
    findings: list[Finding], index: SuppressionIndex
) -> list[Finding]:
    """Mark suppressed findings in place; returns the same list."""
    for finding in findings:
        if finding.rule == RULE_BAD_SUPPRESSION:
            continue
        suppression = index.lookup(finding.rule, finding.line)
        if suppression is not None:
            finding.suppressed = True
            finding.justification = suppression.justification
    return findings

"""Trust-boundary lint (pass 1).

Checks every ``untrusted``/``public`` module (and, with a wider allowlist,
every ``owner`` module) against the declarative trust map:

1. **Imports.** A restricted module may import from ``enclave``/``crypto``/
   ``owner`` modules only the symbols registered on the boundary surface —
   the ecall host handle, enclave-load artifacts, configuration, and
   wire-safe ciphertext containers. Whole-module imports of trusted modules
   are never allowed from restricted code.
2. **Symbols.** Restricted code must never *name* key- or plaintext-bearing
   identifiers (``SKDB``, ``pae_gen``, ``derive_column_key``, sealing
   helpers); no one outside the enclave may name enclave internals
   (``_protected``, ``protected_get``, ``_dispatch``, ...).
3. **Ecall names.** Every literal ``host.ecall("name", ...)`` outside the
   enclave must target a registered entry point, mirroring how SGX rejects
   unregistered ecalls at the boundary.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import resolve_import, walk_runtime
from repro.analysis.findings import (
    RULE_BOUNDARY_IMPORT,
    RULE_FORBIDDEN_SYMBOL,
    RULE_UNKNOWN_ECALL,
    Finding,
)
from repro.analysis.trustmap import (
    ENCLAVE_INTERNALS,
    KEY_SYMBOLS,
    MODULE_TRUST,
    REGISTERED_ECALLS,
    RESTRICTED_LEVELS,
    TRUST_CRYPTO,
    TRUST_ENCLAVE,
    TRUST_OWNER,
    TRUSTED_LEVELS,
    allowed_symbols,
    trust_level,
)


def check(tree: ast.AST, *, module: str, path: str) -> list[Finding]:
    level = trust_level(module)
    if level in (TRUST_ENCLAVE, TRUST_CRYPTO):
        return []  # the TCB itself is unrestricted

    findings: list[Finding] = []
    restricted = level in RESTRICTED_LEVELS

    def report(rule: str, node: ast.AST, message: str, symbol: str | None) -> None:
        findings.append(
            Finding(
                rule=rule,
                module=module,
                path=path,
                line=getattr(node, "lineno", 1),
                message=message,
                symbol=symbol,
            )
        )

    if restricted:
        forbidden = KEY_SYMBOLS | ENCLAVE_INTERNALS
    else:  # owner: holds keys legitimately, still barred from enclave state
        forbidden = frozenset(ENCLAVE_INTERNALS)

    for node in walk_runtime(tree):
        # ---- import rules --------------------------------------------
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                if not target.startswith("repro"):
                    continue
                target_level = trust_level(target)
                if target_level not in TRUSTED_LEVELS:
                    continue
                if level == TRUST_OWNER and target_level in (
                    TRUST_CRYPTO,
                    TRUST_OWNER,
                ):
                    continue
                report(
                    RULE_BOUNDARY_IMPORT,
                    node,
                    f"{level} module {module} imports trusted module "
                    f"{target} wholesale; only registered surface symbols "
                    "may cross the boundary",
                    target,
                )
        elif isinstance(node, ast.ImportFrom):
            target = resolve_import(node, module)
            if target is None or not target.startswith("repro"):
                continue
            target_level = trust_level(target)
            if target_level not in TRUSTED_LEVELS:
                continue
            if level == TRUST_OWNER and target_level in (TRUST_CRYPTO, TRUST_OWNER):
                continue
            surface = allowed_symbols(level, target)
            for alias in node.names:
                # ``from repro import exceptions``-style submodule imports:
                # an alias explicitly classified public/untrusted in the
                # trust map is importable from anywhere.
                sub_level = MODULE_TRUST.get(f"{target}.{alias.name}")
                if sub_level is not None and sub_level not in TRUSTED_LEVELS:
                    continue
                if alias.name == "*":
                    report(
                        RULE_BOUNDARY_IMPORT,
                        node,
                        f"{level} module {module} star-imports trusted "
                        f"module {target}",
                        "*",
                    )
                    continue
                if alias.name not in surface:
                    report(
                        RULE_BOUNDARY_IMPORT,
                        node,
                        f"{level} module {module} imports {alias.name!r} "
                        f"from {target_level} module {target}; not on the "
                        "registered boundary surface",
                        alias.name,
                    )

        # ---- forbidden symbol references -----------------------------
        symbol: str | None = None
        if isinstance(node, ast.Name) and node.id in forbidden:
            symbol = node.id
        elif isinstance(node, ast.Attribute) and node.attr in forbidden:
            symbol = node.attr
        elif isinstance(node, ast.arg) and node.arg in forbidden:
            symbol = node.arg
        elif isinstance(node, ast.keyword) and node.arg in forbidden:
            symbol = node.arg
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name in forbidden
        ):
            symbol = node.name
        if symbol is not None:
            kind = (
                "enclave-internal member"
                if symbol in ENCLAVE_INTERNALS
                else "key/plaintext-bearing symbol"
            )
            report(
                RULE_FORBIDDEN_SYMBOL,
                node,
                f"{level} module {module} references {kind} {symbol!r}",
                symbol,
            )

        # ---- ecall surface -------------------------------------------
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "ecall"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            name = node.args[0].value
            if name not in REGISTERED_ECALLS:
                report(
                    RULE_UNKNOWN_ECALL,
                    node,
                    f"ecall {name!r} is not a registered enclave entry "
                    "point (see trustmap.REGISTERED_ECALLS)",
                    name,
                )

    return findings

"""Runtime leakage oracle — dynamic half of the leakage-contract checker.

The static pass (:mod:`repro.analysis.leakage`) proves each response site
*references* its declared shaping helper; this module observes what the
provider actually sees while tests run and (a) checks the eager shaping
invariants on every event, (b) records the full provider-observable trace
so paired-dataset tests can assert trace equivalence per ED kind.

What the provider observes (DESIGN.md §15): the **ecall sequence** with
argument/return *shapes* (byte sizes, element counts, nesting — never
content), and every **wire frame** (type + payload byte size). Two runs
over datasets that differ only in protected values must produce
byte-size-identical traces wherever the chosen ED kind promises to hide
the difference; a weaker kind's *declared* leakage is the only permitted
divergence.

Instrumented choke points:

- :meth:`repro.sgx.enclave.Enclave._dispatch` — every ecall of every
  enclave instance funnels through it (the boundary lock and cost
  accounting already rely on this), so wrapping it observes exactly what
  crosses the boundary.
- :func:`repro.net.protocol.encode_frame` — every outbound frame of both
  the server and the client. ``net.server`` / ``net.client`` import it by
  name, so the wrapper is installed (and restored) on all three modules.

Eager invariants checked as events arrive, mirroring the contracts in
:data:`~repro.analysis.leakage.ECALL_CONTRACTS`:

- ``dict_search`` / ``dict_search_batch`` results carrying ordinal ranges
  have **exactly two** (real ranges padded with ``DUMMY_RANGE``) — the
  count never encodes how many runs matched;
- ``aggregate_groups`` returns a **power-of-two** count of
  **uniform-size** frames;
- ``rotate_delta`` returns blobs with byte-for-byte the **same size
  vector** as its input;
- every ``ERROR`` frame decodes to a registered wire-safe kind whose
  message survives :func:`repro.net.errors.scrub_message` unchanged and
  carries no traceback text.

Wire-up: ``ENCDBDB_LEAK_CHECK=1 python -m pytest ...`` installs a
session-scoped oracle (see ``tests/conftest.py``) and asserts a clean
report at teardown; :func:`capture_trace` scopes trace collection to one
``with`` block for the equivalence harness.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Live oracles, newest last. ``capture_trace`` reuses the installed
#: session oracle when there is one so `_dispatch` is not double-wrapped.
_ACTIVE: list["LeakOracle"] = []
_ACTIVE_LOCK = threading.Lock()


#: Recursion budget for :func:`observable_shape`. Ecall arguments carry
#: dictionary references whose object graphs are deep (and, through the
#: enclave's protected store, cyclic); a size/count observer sees at most
#: this many nesting levels before the shape collapses to a type marker.
_SHAPE_MAX_DEPTH = 8


def observable_shape(value: Any, _depth: int = 0, _seen: set[int] | None = None) -> Any:
    """The provider-observable *shape* of a value — sizes and counts only.

    Content never appears in the result: bytes and strings collapse to
    their lengths, scalars to type markers, containers to their element
    shapes. Equal shapes == indistinguishable to a size/count observer.
    """
    if value is None:
        return None
    if isinstance(value, (bytes, bytearray, memoryview)):
        return ("bytes", len(value))
    if isinstance(value, str):
        return ("str", len(value))
    if isinstance(value, bool):
        return ("bool",)
    if isinstance(value, int):
        return ("int",)
    if isinstance(value, float):
        return ("float",)
    if _depth >= _SHAPE_MAX_DEPTH:
        return (type(value).__name__, "...")
    if _seen is None:
        _seen = set()

    def recurse(inner: Any) -> Any:
        return observable_shape(inner, _depth + 1, _seen)

    if isinstance(value, (list, tuple)):
        return ("seq", len(value), tuple(recurse(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", len(value), tuple(sorted(map(repr, map(recurse, value)))))
    if isinstance(value, dict):
        return (
            "map",
            tuple(
                (str(key), recurse(val))
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
            ),
        )
    shape = getattr(value, "shape", None)
    itemsize = getattr(value, "itemsize", None)
    if shape is not None and itemsize is not None:  # numpy array
        return ("array", int(itemsize), tuple(int(d) for d in shape))
    if id(value) in _seen:  # cyclic object graph
        return (type(value).__name__, "cycle")
    _seen.add(id(value))
    fields = getattr(value, "__dict__", None)
    if fields is not None:
        return (
            type(value).__name__,
            tuple((name, recurse(val)) for name, val in sorted(fields.items())),
        )
    if hasattr(value, "_fields"):  # namedtuple without __dict__
        return (
            type(value).__name__,
            tuple(recurse(getattr(value, f)) for f in value._fields),
        )
    return (type(value).__name__,)


@dataclass(frozen=True)
class TraceEvent:
    """One provider-observable event: an ecall or a wire frame."""

    channel: str  # "ecall" | "frame"
    name: str  # ecall name / frame type name
    shape: Any  # observable_shape of (args, kwargs, result) / byte size

    def render(self) -> str:
        return f"{self.channel}:{self.name} {self.shape!r}"


@dataclass(frozen=True)
class LeakViolation:
    """One eager shaping-invariant breach."""

    invariant: str
    detail: str

    def render(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class LeakReport:
    """Thread-safe accumulator for trace events and violations."""

    events: list[TraceEvent] = field(default_factory=list)
    violations: list[LeakViolation] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def record_violation(self, violation: LeakViolation) -> None:
        with self._lock:
            self.violations.append(violation)

    def snapshot(self) -> list[TraceEvent]:
        with self._lock:
            return list(self.events)

    def drain(self) -> list[LeakViolation]:
        """Consume recorded violations (for deliberate-leak tests)."""
        with self._lock:
            drained = list(self.violations)
            self.violations.clear()
            return drained

    def assert_clean(self) -> None:
        with self._lock:
            found = list(self.violations)
        if found:
            rendered = "\n  ".join(v.render() for v in found)
            raise AssertionError(
                f"leak oracle recorded {len(found)} shaping violation(s):\n"
                f"  {rendered}"
            )


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class LeakOracle:
    """Patches the boundary choke points; restorable."""

    def __init__(self) -> None:
        self.report = LeakReport()
        self._patched: list[Callable[[], None]] = []
        #: extra per-scope sinks appended by :func:`capture_trace`.
        self._taps: list[Callable[[TraceEvent], None]] = []
        self._tap_lock = threading.Lock()

    # -- event intake ---------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        self.report.record(event)
        with self._tap_lock:
            taps = list(self._taps)
        for tap in taps:
            tap(event)

    def add_tap(self, tap: Callable[[TraceEvent], None]) -> None:
        with self._tap_lock:
            self._taps.append(tap)

    def remove_tap(self, tap: Callable[[TraceEvent], None]) -> None:
        with self._tap_lock:
            self._taps.remove(tap)

    # -- eager invariants ----------------------------------------------

    def _check_search_result(self, name: str, result: Any) -> None:
        ranges = getattr(result, "ranges", None)
        if ranges is None:
            return
        if ranges and len(ranges) != 2:
            self.report.record_violation(
                LeakViolation(
                    "padded-ranges",
                    f"{name} returned {len(ranges)} ordinal ranges; every "
                    "range-bearing SearchResult must carry exactly two "
                    "(real + DUMMY_RANGE padding)",
                )
            )

    def _check_ecall(self, name: str, args: tuple, kwargs: dict, result: Any) -> None:
        if name == "dict_search":
            self._check_search_result(name, result)
        elif name == "dict_search_batch" and isinstance(result, list):
            for item in result:
                self._check_search_result(name, item)
        elif name == "aggregate_groups" and isinstance(result, list):
            sizes = {len(blob) for blob in result}
            if not _is_power_of_two(len(result)):
                self.report.record_violation(
                    LeakViolation(
                        "pow2-group-frames",
                        f"aggregate_groups returned {len(result)} frames; "
                        "the count must be padded to a power of two",
                    )
                )
            if len(sizes) > 1:
                self.report.record_violation(
                    LeakViolation(
                        "uniform-group-frames",
                        f"aggregate_groups frames have {len(sizes)} distinct "
                        f"byte sizes {sorted(sizes)}; all frames must be "
                        "padded to one uniform size",
                    )
                )
        elif name == "rotate_delta" and isinstance(result, list):
            blobs = args[2] if len(args) > 2 else kwargs.get("delta_blobs", ())
            in_sizes = [len(b) for b in blobs]
            out_sizes = [len(b) for b in result]
            if in_sizes != out_sizes:
                self.report.record_violation(
                    LeakViolation(
                        "rotate-delta-sizes",
                        f"rotate_delta changed the delta size vector "
                        f"({in_sizes} -> {out_sizes}); a key flip must be "
                        "size-invariant",
                    )
                )

    def _check_frame(self, frame_type: Any, payload: bytes) -> None:
        name = getattr(frame_type, "name", str(frame_type))
        if name != "ERROR":
            return
        from repro.net.errors import WIRE_SAFE_EXCEPTIONS, scrub_message
        from repro.net.protocol import decode_payload

        try:
            decoded = decode_payload(payload)
            kind = decoded["kind"]
            message = decoded["message"]
        except Exception:
            self.report.record_violation(
                LeakViolation(
                    "error-frame-shape",
                    "ERROR frame payload does not decode to {kind, message}",
                )
            )
            return
        if kind not in WIRE_SAFE_EXCEPTIONS:
            self.report.record_violation(
                LeakViolation(
                    "error-frame-kind",
                    f"ERROR frame carries unregistered kind {kind!r}",
                )
            )
        if scrub_message(message) != message or "Traceback" in message:
            self.report.record_violation(
                LeakViolation(
                    "error-frame-scrub",
                    f"ERROR frame message is not scrub-stable: {message[:80]!r}",
                )
            )

    # -- instrumentation ------------------------------------------------

    def instrument_default(self) -> None:
        """Patch the enclave dispatcher and the wire frame encoder."""
        self._instrument_dispatch()
        self._instrument_frames()
        with _ACTIVE_LOCK:
            _ACTIVE.append(self)

    def _instrument_dispatch(self) -> None:
        # lint: allow(boundary-import) justification="the oracle wraps the enclave dispatcher to shape-trace ecalls; it runs in tests only, never in a deployment role"
        from repro.sgx import enclave as enclave_mod

        # lint: allow(forbidden-symbol) justification="single choke point for every ecall; the wrapper records shapes only and delegates unchanged"
        original = enclave_mod.Enclave._dispatch
        oracle = self

        def traced_dispatch(self_enclave, name, args, kwargs):  # type: ignore[no-untyped-def]
            result = original(self_enclave, name, args, kwargs)
            oracle._emit(
                TraceEvent(
                    channel="ecall",
                    name=name,
                    shape=(
                        observable_shape(list(args)),
                        observable_shape(dict(kwargs)),
                        observable_shape(result),
                    ),
                )
            )
            oracle._check_ecall(name, args, kwargs, result)
            return result

        # lint: allow(forbidden-symbol) justification="installs/uninstalls the tracing wrapper on the dispatcher; test-only instrumentation"
        enclave_mod.Enclave._dispatch = traced_dispatch  # type: ignore[method-assign]
        self._patched.append(
            lambda: setattr(enclave_mod.Enclave, "_dispatch", original)
        )

    def _instrument_frames(self) -> None:
        from repro.net import client as client_mod
        from repro.net import protocol as protocol_mod
        from repro.net import server as server_mod

        original = protocol_mod.encode_frame
        oracle = self

        def traced_encode_frame(frame_type, payload):  # type: ignore[no-untyped-def]
            raw = original(frame_type, payload)
            oracle._emit(
                TraceEvent(
                    channel="frame",
                    name=getattr(frame_type, "name", str(frame_type)),
                    shape=("bytes", len(payload)),
                )
            )
            oracle._check_frame(frame_type, payload)
            return raw

        for module in (protocol_mod, server_mod, client_mod):
            if getattr(module, "encode_frame", None) is original:
                module.encode_frame = traced_encode_frame  # type: ignore[attr-defined]
                self._patched.append(
                    lambda module=module: setattr(module, "encode_frame", original)
                )

    # -- teardown -------------------------------------------------------

    def restore(self) -> None:
        with _ACTIVE_LOCK:
            if self in _ACTIVE:
                _ACTIVE.remove(self)
        while self._patched:
            self._patched.pop()()

    def __enter__(self) -> "LeakOracle":
        self.instrument_default()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.restore()


@contextmanager
def capture_trace() -> Iterator[list[TraceEvent]]:
    """Collect the provider-observable trace of one ``with`` block.

    Reuses the session-installed oracle when ``ENCDBDB_LEAK_CHECK=1`` put
    one in place (so the dispatcher is never double-wrapped); otherwise
    installs a temporary oracle for the duration of the block.
    """
    with _ACTIVE_LOCK:
        oracle = _ACTIVE[-1] if _ACTIVE else None
    events: list[TraceEvent] = []
    if oracle is not None:
        oracle.add_tap(events.append)
        try:
            yield events
        finally:
            oracle.remove_tap(events.append)
        return
    with LeakOracle() as temporary:
        temporary.add_tap(events.append)
        try:
            yield events
        finally:
            temporary.remove_tap(events.append)

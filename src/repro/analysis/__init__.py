"""Trust-boundary & concurrency linter for the EncDBDB reproduction.

AST-based static analysis plus a runtime race detector, built around the
declarative trust map in :mod:`repro.analysis.trustmap`:

- :mod:`repro.analysis.boundary` — untrusted code reaches enclave state
  only through the registered ecall surface; never names key material.
- :mod:`repro.analysis.cryptolint` — DRBG-only randomness in deterministic
  build paths, no PAE bypass, no plaintext types near the wire.
- :mod:`repro.analysis.locks` — ``# guarded-by:`` lock-discipline checking.
- :mod:`repro.analysis.racecheck` — runtime ``__setattr__`` instrumentation
  enforcing the same annotations under real thread hammers.

Run ``python -m repro.analysis`` (optionally ``--format json``) to lint the
source tree; suppressions require a written justification (see
:mod:`repro.analysis.suppressions`).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Report,
    analyze_file,
    analyze_paths,
    analyze_source,
    module_name_for,
)
from repro.analysis.findings import ALL_RULES, FileReport, Finding
from repro.analysis.racecheck import RaceDetector, RaceReport, RaceViolation
from repro.analysis.suppressions import parse_suppressions
from repro.analysis.trustmap import (
    MODULE_TRUST,
    REGISTERED_ECALLS,
    trust_level,
)

__all__ = [
    "ALL_RULES",
    "FileReport",
    "Finding",
    "MODULE_TRUST",
    "REGISTERED_ECALLS",
    "RaceDetector",
    "RaceReport",
    "RaceViolation",
    "Report",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "module_name_for",
    "parse_suppressions",
    "trust_level",
]

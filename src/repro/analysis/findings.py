"""Finding model and rule registry of the ``repro.analysis`` linter.

Every pass reports :class:`Finding` records; the engine resolves inline
suppressions against them and renders text or machine-readable JSON. Rules
are identified by stable kebab-case ids so suppression comments and CI
gating never depend on message wording.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --- Trust-boundary pass -------------------------------------------------
#: An untrusted/public module imports a trusted symbol that is not part of
#: the registered boundary surface (ecall host handle, config, wire types).
RULE_BOUNDARY_IMPORT = "boundary-import"
#: An untrusted/public module references a key- or plaintext-bearing symbol
#: (``SKDB``, ``pae_gen``, ``derive_column_key``, sealing keys, ...) or an
#: enclave-internal member (``_protected``, ``protected_get``, ...).
RULE_FORBIDDEN_SYMBOL = "forbidden-symbol"
#: ``host.ecall("name")`` with a name outside the registered ecall surface.
RULE_UNKNOWN_ECALL = "unknown-ecall"

# --- Crypto-discipline pass ----------------------------------------------
#: ``os.urandom`` / ``random`` / ``secrets`` / ``numpy.random`` inside a
#: deterministic build path (IVs must come from a caller DRBG, PR 4).
RULE_NONDET_RANDOMNESS = "nondet-randomness"
#: AES/GCM primitives or PAE internals (``_seal``/``_open``/``_draw_iv``)
#: referenced outside ``repro.crypto`` — bypassing the counted batch
#: interface that the cost model and IV discipline hang off.
RULE_PAE_BYPASS = "pae-bypass"
#: A ``repro.net`` module imports a plaintext-bearing build/dictionary
#: symbol — plaintext types must never be serializable into wire frames.
RULE_WIRE_PLAINTEXT = "wire-plaintext"
#: ``pickle``/``marshal``-style ambient serialization anywhere in ``src``.
RULE_UNSAFE_SERIALIZATION = "unsafe-serialization"

# --- Lock-discipline pass ------------------------------------------------
#: A ``# guarded-by:`` annotated attribute is mutated outside a ``with``
#: block on its declared lock.
RULE_UNGUARDED_MUTATION = "unguarded-mutation"
#: A ``# guarded-by:`` annotation names a lock the class/module never
#: defines, or is syntactically unusable.
RULE_BAD_ANNOTATION = "bad-annotation"

# --- Plaintext-taint pass (PR 10) ----------------------------------------
#: A plaintext- or key-derived value (PAE decrypt output, unsealed SKDB,
#: DRBG seed, secure-channel payload) reaches an untrusted sink — wire
#: frames, log/exception strings, EXPLAIN lines, bench payloads — without a
#: sanctioned sanitizer (PAE encrypt, sealing, digests, redaction).
RULE_PLAINTEXT_TAINT = "plaintext-taint"

# --- Leakage-contract pass (PR 10) ---------------------------------------
#: An ``@ecall`` entry point or wire verb without a declared leakage
#: contract in :data:`repro.analysis.leakage.ECALL_CONTRACTS` /
#: :data:`~repro.analysis.leakage.VERB_CONTRACTS`.
RULE_UNDECLARED_CONTRACT = "undeclared-contract"
#: A response-constructing site whose declared shaping helpers (padding,
#: uniform frame sizing, ordinal-bound clamping, redaction) never appear in
#: its body — the contract is declared but not provably applied.
RULE_UNSHAPED_RESPONSE = "unshaped-response"

# --- Suppression mechanism -----------------------------------------------
#: A ``lint: allow(...)`` comment without the mandatory justification, or
#: one that is malformed. Never suppressible itself.
RULE_BAD_SUPPRESSION = "bad-suppression"

ALL_RULES: tuple[str, ...] = (
    RULE_BOUNDARY_IMPORT,
    RULE_FORBIDDEN_SYMBOL,
    RULE_UNKNOWN_ECALL,
    RULE_NONDET_RANDOMNESS,
    RULE_PAE_BYPASS,
    RULE_WIRE_PLAINTEXT,
    RULE_UNSAFE_SERIALIZATION,
    RULE_UNGUARDED_MUTATION,
    RULE_BAD_ANNOTATION,
    RULE_PLAINTEXT_TAINT,
    RULE_UNDECLARED_CONTRACT,
    RULE_UNSHAPED_RESPONSE,
    RULE_BAD_SUPPRESSION,
)


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    module: str
    path: str
    line: int
    message: str
    symbol: str | None = None
    suppressed: bool = False
    justification: str | None = None

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


@dataclass
class FileReport:
    """All findings of one analyzed file."""

    path: str
    module: str
    findings: list[Finding] = field(default_factory=list)

"""Plaintext-taint lint (pass 4, PR 10).

An interprocedural, summary-based taint pass over one module: values
produced by crypto *sources* (PAE ``decrypt``/``decrypt_many`` output,
``unseal``-ed blobs, secure-channel ``receive`` payloads, derived keys,
the enclave's protected store) are tracked through assignments, container
construction, f-strings, arithmetic, and local calls; the pass fails
closed when a tainted value reaches an observable *sink* — wire frame
encoders, log/print output, exception messages, ambient JSON — without a
sanctioned *sanitizer* (PAE encrypt, sealing, digests, the ``net.errors``
redaction helpers, the dictionary searcher whose ordinal output is the
declared leakage).

Design notes
============

- **Within-module interprocedural.** Function summaries (does it return
  taint unconditionally? does taint flow from arguments to the return
  value? does an argument reach a sink inside?) are computed to a
  fixpoint over the module's own functions, keyed by bare name so
  ``self._helper(x)`` resolves to the sibling method. Cross-module calls
  fall back to name-based source/sanitizer classification; an unknown
  call propagates taint from its arguments (fail closed).
- **Comparisons do not propagate.** The boolean of ``plaintext <= bound``
  and the ordinal positions derived from it *are* the per-kind declared
  search leakage (DESIGN.md §4c, §15); tracking them would flag every
  line of the dictionary search. The runtime leak oracle — not this
  pass — is what bounds that channel.
- **Sinks are trust-level aware.** ``owner`` modules legitimately print
  decrypted results (the CLI, the proxy's result rendering), so only the
  wire-encoder sinks apply there; restricted and TCB modules get the
  full sink set, and an ``enclave`` module additionally must not return
  taint straight out of an ``@ecall`` (that is the boundary itself).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import RULE_PLAINTEXT_TAINT, Finding
from repro.analysis.trustmap import (
    RESTRICTED_LEVELS,
    TRUST_CRYPTO,
    TRUST_ENCLAVE,
    TRUST_OWNER,
    trust_level,
)

#: Calls whose return value is plaintext derived from ciphertext or a
#: protected store — the taint sources.
PLAINTEXT_SOURCES = frozenset(
    {
        "decrypt",
        "decrypt_many",
        "unseal",
        "receive",  # SecureChannel.receive — decrypted channel payload
        "protected_get",  # enclave protected store (SKDB et al.)
    }
)

#: Calls whose return value is key material or key-equivalent seed data.
KEY_SOURCES = frozenset(
    {
        "pae_gen",
        "derive_column_key",
        "derive_rotation_seed",
        "hkdf_sha256",
    }
)

SOURCES = PLAINTEXT_SOURCES | KEY_SOURCES

#: Calls that launder taint by construction: authenticated encryption,
#: sealing, fixed-width digests, the redaction helpers, and the
#: dictionary searcher / EncDB builders whose outputs carry only each
#: kind's *declared* leakage.
SANITIZERS = frozenset(
    {
        "encrypt",
        "encrypt_many",
        "seal",
        "scrub_message",
        "redact_exception",
        "digest",
        "hexdigest",
        "encdb_build",
        "encdb_build_partitioned",
        "search",
        "plain_search",
        "len",
        "id",
        "bool",
        "isinstance",
        "hash",
    }
)

#: Logger-style attribute calls treated as log sinks.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: Wire-encoder / socket sinks — apply at every trust level: nothing
#: tainted may be framed or written to a socket unencrypted.
_WIRE_SINKS = frozenset({"encode_payload", "encode_frame", "sendall"})

_MAX_FIXPOINT_ROUNDS = 6


@dataclass
class _Summary:
    """Taint behaviour of one module-local function."""

    returns_taint: bool = False  # returns taint with clean arguments
    propagates: bool = False  # tainted argument -> tainted return
    arg_sink: bool = False  # tainted argument reaches a sink inside


@dataclass
class _FunctionInfo:
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool
    is_ecall: bool
    summary: _Summary = field(default_factory=_Summary)


def _decorator_name(dec: ast.expr) -> str | None:
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    if isinstance(dec, ast.Call):
        return _decorator_name(dec.func)
    return None


def is_ecall_def(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(_decorator_name(dec) == "ecall" for dec in node.decorator_list)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _target_path(node: ast.expr) -> str | None:
    """Dotted path of an assignment target (``x``, ``self.key``)."""
    parts: list[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        else:
            return None


class _FunctionAnalysis:
    """One intra-procedural run: propagate taint, record sink hits."""

    def __init__(
        self,
        info: _FunctionInfo,
        functions: dict[str, _FunctionInfo],
        *,
        params_tainted: bool,
        level: str,
    ) -> None:
        self.info = info
        self.functions = functions
        self.level = level
        self.tainted: set[str] = set()
        self.returns_taint = False
        self.sink_hits: list[tuple[ast.AST, str]] = []
        if params_tainted:
            args = info.node.args
            params = [
                a.arg
                for a in (
                    args.posonlyargs + args.args + args.kwonlyargs
                )
            ]
            if info.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            self.tainted.update(params)

    # -- expression taint ---------------------------------------------

    def taint_of(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            path = _target_path(node)
            if path is not None and path in self.tainted:
                return True
            inner = node.value if isinstance(node, ast.Attribute) else node.value
            tainted = self.taint_of(inner)
            if isinstance(node, ast.Subscript):
                tainted = tainted or self.taint_of(node.slice)
            return tainted
        if isinstance(node, ast.Call):
            return self._taint_of_call(node)
        if isinstance(node, ast.Compare):
            # Declared search leakage; see module docstring.
            self.taint_of(node.left)
            for comparator in node.comparators:
                self.taint_of(comparator)
            return False
        if isinstance(node, ast.BoolOp):
            return any(self.taint_of(v) for v in node.values)
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left) or self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.IfExp):
            self.taint_of(node.test)
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return any(self.taint_of(v) for v in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.taint_of(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.taint_of(k) for k in node.keys if k is not None) or any(
                self.taint_of(v) for v in node.values
            )
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._taint_of_comprehension(node.elt, node.generators)
        if isinstance(node, ast.DictComp):
            tainted_iter = self._bind_generators(node.generators)
            return (
                tainted_iter
                or self.taint_of(node.key)
                or self.taint_of(node.value)
            )
        if isinstance(node, ast.NamedExpr):
            tainted = self.taint_of(node.value)
            path = _target_path(node.target)
            if path is not None:
                if tainted:
                    self.tainted.add(path)
                else:
                    self.tainted.discard(path)
            return tainted
        if isinstance(node, ast.Lambda):
            return False
        # Anything unmodelled: conservatively untainted but walk children
        # so nested calls still get sink-checked.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.taint_of(child)
        return False

    def _bind_generators(self, generators: list[ast.comprehension]) -> bool:
        any_tainted = False
        for gen in generators:
            if self.taint_of(gen.iter):
                any_tainted = True
                path = _target_path(gen.target)
                if path is not None:
                    self.tainted.add(path)
                elif isinstance(gen.target, ast.Tuple):
                    for elt in gen.target.elts:
                        elt_path = _target_path(elt)
                        if elt_path is not None:
                            self.tainted.add(elt_path)
            for cond in gen.ifs:
                self.taint_of(cond)
        return any_tainted

    def _taint_of_comprehension(
        self, elt: ast.expr, generators: list[ast.comprehension]
    ) -> bool:
        self._bind_generators(generators)
        return self.taint_of(elt)

    def _taint_of_call(self, node: ast.Call) -> bool:
        name = _call_name(node)
        arg_taints = [self.taint_of(a) for a in node.args]
        kw_taints = [self.taint_of(k.value) for k in node.keywords]
        any_arg_tainted = any(arg_taints) or any(kw_taints)
        # receiver taint: pae.decrypt is a source regardless; obj.method(x)
        # on a tainted obj yields taint (str methods on plaintext, etc.)
        receiver_tainted = False
        if isinstance(node.func, ast.Attribute):
            receiver_tainted = self.taint_of(node.func.value)

        self._check_call_sinks(node, name, arg_taints, kw_taints)

        if name in SANITIZERS:
            return False
        if name in SOURCES:
            return True
        info = self.functions.get(name) if name else None
        if info is not None:
            summary = info.summary
            if summary.arg_sink and any_arg_tainted:
                self.sink_hits.append(
                    (
                        node,
                        f"tainted argument flows into {name}(), which passes "
                        "it to an observable sink",
                    )
                )
            if summary.returns_taint:
                return True
            if summary.propagates and (any_arg_tainted or receiver_tainted):
                return True
            return False
        # Unknown callee: taint flows through (fail closed).
        return any_arg_tainted or receiver_tainted

    # -- sinks ---------------------------------------------------------

    def _check_call_sinks(
        self,
        node: ast.Call,
        name: str | None,
        arg_taints: list[bool],
        kw_taints: list[bool],
    ) -> None:
        if name is None:
            return
        any_tainted = any(arg_taints) or any(kw_taints)
        if not any_tainted:
            return
        if name in _WIRE_SINKS:
            self.sink_hits.append(
                (node, f"plaintext-derived value reaches wire sink {name}()")
            )
            return
        if self.level == TRUST_OWNER:
            return  # owner code legitimately renders decrypted results
        if name == "print":
            self.sink_hits.append(
                (node, "plaintext-derived value reaches print() output")
            )
        elif name in ("dump", "dumps"):
            self.sink_hits.append(
                (node, f"plaintext-derived value reaches json.{name}()")
            )
        elif name in _LOG_METHODS and isinstance(node.func, ast.Attribute):
            root = node.func.value
            root_name = root.id if isinstance(root, ast.Name) else getattr(root, "attr", "")
            if "log" in str(root_name).lower():
                self.sink_hits.append(
                    (node, f"plaintext-derived value reaches log call .{name}()")
                )

    # -- statements ----------------------------------------------------

    def run(self) -> None:
        # Two passes approximate loop-carried taint without a full CFG.
        for _ in range(2):
            before = set(self.tainted)
            for stmt in self.info.node.body:
                self._visit_stmt(stmt)
            if self.tainted == before:
                break

    def _assign(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tainted)
            return
        path = _target_path(target)
        if path is None:
            return
        if tainted:
            self.tainted.add(path)
        else:
            self.tainted.discard(path)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tainted = self.taint_of(stmt.value)
            for target in stmt.targets:
                self._assign(target, tainted)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.taint_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tainted = self.taint_of(stmt.value)
            path = _target_path(stmt.target)
            if path is not None and (tainted or path in self.tainted):
                self.tainted.add(path)
        elif isinstance(stmt, ast.Return):
            if self.taint_of(stmt.value):
                self.returns_taint = True
                if self.level == TRUST_ENCLAVE and self.info.is_ecall:
                    self.sink_hits.append(
                        (
                            stmt,
                            f"@ecall {self.info.node.name!r} returns a "
                            "plaintext/key-derived value across the enclave "
                            "boundary",
                        )
                    )
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None and self.level != TRUST_OWNER:
                exc = stmt.exc
                tainted = False
                if isinstance(exc, ast.Call):
                    tainted = any(self.taint_of(a) for a in exc.args) or any(
                        self.taint_of(k.value) for k in exc.keywords
                    )
                else:
                    tainted = self.taint_of(exc)
                if tainted:
                    self.sink_hits.append(
                        (
                            stmt,
                            "plaintext-derived value reaches an exception "
                            "message (crosses to the provider unredacted)",
                        )
                    )
        elif isinstance(stmt, ast.Expr):
            self.taint_of(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.taint_of(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self.taint_of(stmt.iter):
                self._assign(stmt.target, True)
            for sub in stmt.body + stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.While):
            self.taint_of(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tainted = self.taint_of(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tainted)
            for sub in stmt.body:
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._visit_stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._visit_stmt(sub)
            for sub in stmt.orelse + stmt.finalbody:
                self._visit_stmt(sub)
        # Nested function/class defs are analyzed separately.


def _collect_functions(tree: ast.AST) -> dict[str, _FunctionInfo]:
    functions: dict[str, _FunctionInfo] = {}

    def visit(node: ast.AST, inside_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(
                    child.name,
                    _FunctionInfo(
                        node=child,
                        is_method=inside_class,
                        is_ecall=is_ecall_def(child),
                    ),
                )
                visit(child, False)
            elif isinstance(child, ast.ClassDef):
                visit(child, True)
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                visit(child, inside_class)

    visit(tree, False)
    return functions


def check(tree: ast.AST, *, module: str, path: str) -> list[Finding]:
    level = trust_level(module)
    functions = _collect_functions(tree)
    if not functions:
        return []

    # Fixpoint over summaries: clean-args run decides returns_taint,
    # tainted-args run decides propagates / arg_sink.
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for info in functions.values():
            clean = _FunctionAnalysis(
                info, functions, params_tainted=False, level=level
            )
            clean.run()
            dirty = _FunctionAnalysis(
                info, functions, params_tainted=True, level=level
            )
            dirty.run()
            summary = _Summary(
                returns_taint=clean.returns_taint,
                propagates=dirty.returns_taint and not clean.returns_taint,
                arg_sink=bool(dirty.sink_hits) and not bool(clean.sink_hits),
            )
            if summary != info.summary:
                info.summary = summary
                changed = True
        if not changed:
            break

    findings: list[Finding] = []
    seen: set[tuple[int, str]] = set()
    applicable = level in RESTRICTED_LEVELS or level in (
        TRUST_ENCLAVE,
        TRUST_CRYPTO,
        TRUST_OWNER,
    )
    if not applicable:  # pragma: no cover - every level is applicable today
        return []
    for info in functions.values():
        clean = _FunctionAnalysis(info, functions, params_tainted=False, level=level)
        clean.run()
        for node, message in clean.sink_hits:
            line = getattr(node, "lineno", 1)
            key = (line, message)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    rule=RULE_PLAINTEXT_TAINT,
                    module=module,
                    path=path,
                    line=line,
                    message=message + " without a sanctioned sanitizer",
                )
            )
    findings.sort(key=lambda f: f.line)
    return findings

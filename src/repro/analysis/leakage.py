"""Leakage-contract lint (pass 5, PR 10).

EncDBDB's guarantee is not "no leakage" but *declared, bounded* leakage:
every provider-observable response — an ecall return value, a wire frame —
is shaped by a specific helper (power-of-two group padding, padded
per-partition range unions, uniform-size frames, fixed-width ordinal
bounds, error redaction) so that what the provider sees is exactly what
DESIGN.md §15's per-kind table promises and nothing more.

This pass makes those contracts *data* and machine-checks them:

- :data:`ECALL_CONTRACTS` declares, for every registered ecall, which
  shaping helpers its body must provably invoke. An ``@ecall`` definition
  with no declared contract is an error (``undeclared-contract``) — a new
  enclave entry point cannot ship without stating its leakage. A declared
  contract whose shaping helpers never appear in the body is an error too
  (``unshaped-response``): the promise exists but is not applied.
- :data:`VERB_CONTRACTS` does the same for the wire surface: every key of
  ``repro.net.server.RPC_METHODS`` must carry a contract, and the server
  module must route failures through ``redact_exception`` (the error-frame
  shaping all verbs share).

``tests/analysis/test_leakage_contracts.py`` pins both registries against
the runtime (``ECALL_CONTRACTS`` keys == ``REGISTERED_ECALLS``;
``VERB_CONTRACTS`` keys == the live ``RPC_METHODS``), so registry drift
fails CI from both directions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import (
    RULE_UNDECLARED_CONTRACT,
    RULE_UNSHAPED_RESPONSE,
    Finding,
)
from repro.analysis.taint import is_ecall_def

SERVER_MODULE = "repro.net.server"
RPC_TABLE_NAME = "RPC_METHODS"
ERROR_SHAPER = "redact_exception"


@dataclass(frozen=True)
class LeakageContract:
    """What one response-constructing site is allowed to reveal.

    ``observables`` is prose — the provider-visible facts this entry point
    legitimately leaks (sizes, counts, ordinal positions). ``shaping`` is
    mechanical — helper names that must appear in the implementing body,
    each one the function that *bounds* an observable to its declaration.
    """

    name: str
    kind: str  # "ecall" | "verb"
    observables: str
    shaping: tuple[str, ...]


def _ecall(name: str, observables: str, *shaping: str) -> tuple[str, LeakageContract]:
    return name, LeakageContract(name, "ecall", observables, shaping)


def _verb(name: str, observables: str, *shaping: str) -> tuple[str, LeakageContract]:
    return name, LeakageContract(name, "verb", observables, shaping)


#: Per-ecall leakage contracts. Keys are asserted equal to
#: ``trustmap.REGISTERED_ECALLS`` by the test suite.
ECALL_CONTRACTS: dict[str, LeakageContract] = dict(
    [
        _ecall(
            "channel_offer",
            "one DH public value plus an attestation quote (both public)",
            "offer",
        ),
        _ecall(
            "channel_accept",
            "nothing (returns None; observes one public DH value)",
            "accept",
        ),
        _ecall(
            "provision_master_key",
            "nothing (returns None; consumes one PAE blob)",
            "receive",
        ),
        _ecall(
            "replicate_master_key",
            "one DH public value and one fixed-size PAE blob wrapping SKDB "
            "under the enclave-to-enclave session key",
            "send",
        ),
        _ecall(
            "is_provisioned",
            "one boolean the host already observes via the provisioning "
            "ecall sequence",
        ),
        _ecall(
            "seal_master_key",
            "one sealed blob of fixed size (key length + PAE overhead)",
            "seal",
        ),
        _ecall(
            "restore_master_key",
            "nothing (returns None; consumes one sealed blob)",
            "unseal",
        ),
        _ecall(
            "dict_search",
            "ordinal range positions / matched-vid sets — each kind's "
            "declared order and frequency leakage, padded per kind "
            "(rotated kinds: always exactly two ranges)",
            "_dict_search_one",
        ),
        _ecall(
            "dict_search_batch",
            "request-order list of per-dictionary search results, same "
            "per-kind shaping as dict_search",
            "_dict_search_one",
        ),
        _ecall(
            "join_tokens",
            "one fixed-width HMAC token per dictionary entry (entry count "
            "is already public)",
            "digest",
        ),
        _ecall(
            "reencrypt_for_delta",
            "one PAE blob per appended value (value size padded by bsmax "
            "encoding)",
            "encrypt",
        ),
        _ecall(
            "rebuild_for_merge",
            "a freshly built encrypted dictionary + attribute vector; "
            "entry order decorrelated by an oblivious shuffle",
            "encdb_build",
            "oblivious_shuffle",
        ),
        _ecall(
            "rotate_partition",
            "a deterministically rebuilt encrypted partition (replica-"
            "convergent; randomness from the rotation seed, not ambient)",
            "encdb_build",
            "derive_rotation_seed",
        ),
        _ecall(
            "rotate_delta",
            "same-count, same-size re-encrypted delta blobs at a key flip",
            "encrypt_many",
        ),
        _ecall(
            "aggregate_groups",
            "a power-of-two count of uniform-size encrypted group frames",
            "padded_frame_count",
            "encode_frame_payload",
            "encrypt_many",
        ),
    ]
)

#: Per-wire-verb leakage contracts. Keys are asserted equal to the live
#: ``repro.net.server.RPC_METHODS`` keys by the test suite. All verbs share
#: the error-frame contract (typed kind + scrubbed message via
#: ``redact_exception``); ``shaping`` lists any additional helper the
#: server module must reference for that verb family.
VERB_CONTRACTS: dict[str, LeakageContract] = dict(
    [
        _verb("create_table", "schema shape (names, kinds, widths)"),
        _verb("bulk_load", "ciphertext partition sizes and counts"),
        _verb("execute_select", "result frame byte size; encrypted rows"),
        _verb(
            "execute_select_pushdown",
            "padded group-frame count and uniform frame size (see "
            "aggregate_groups)",
        ),
        _verb(
            "explain_pushdown",
            "plan routing text — operator names and cost classes only, "
            "never values",
        ),
        _verb("execute_join_select", "joined result frame byte size"),
        _verb("execute_insert", "one ack; delta append count"),
        _verb("execute_delete", "deleted-row count"),
        _verb("delete_record_ids", "deleted-row count"),
        _verb("execute_merge", "merged partition count"),
        _verb("save", "snapshot byte size on the server disk"),
        _verb("table_names", "table name list (schema is not protected)"),
        _verb("table_specs", "schema shape per table"),
        _verb("cost_snapshot", "aggregate ecall/decrypt counters"),
        _verb("enclave_seal", "one fixed-size sealed blob"),
        _verb("enclave_restore", "one ack"),
        _verb(
            "enclave_replicate_key",
            "one DH public value + one fixed-size PAE blob (relay-opaque)",
        ),
        _verb("enclave_is_provisioned", "one boolean"),
        _verb("migrate_start", "typed MigrationStatus progress frame"),
        _verb("migrate_step", "typed MigrationStatus progress frame"),
        _verb("migrate_run", "typed MigrationStatus progress frame"),
        _verb("migrate_status", "typed MigrationStatus progress frame"),
        _verb("migrate_rollback", "typed MigrationStatus progress frame"),
    ]
)


def _body_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every Name id / Attribute attr referenced inside a function body."""
    names: set[str] = set()
    for stmt in node.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
    return names


def _module_names(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def check(tree: ast.AST, *, module: str, path: str) -> list[Finding]:
    findings: list[Finding] = []

    def report(rule: str, line: int, message: str, symbol: str | None) -> None:
        findings.append(
            Finding(
                rule=rule,
                module=module,
                path=path,
                line=line,
                message=message,
                symbol=symbol,
            )
        )

    # ---- ecall contracts: every @ecall body applies its shaping ------
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not is_ecall_def(node):
            continue
        contract = ECALL_CONTRACTS.get(node.name)
        if contract is None:
            report(
                RULE_UNDECLARED_CONTRACT,
                node.lineno,
                f"@ecall {node.name!r} has no declared leakage contract; "
                "add one to analysis.leakage.ECALL_CONTRACTS stating what "
                "the provider may observe and which helper shapes it",
                node.name,
            )
            continue
        referenced = _body_names(node)
        for helper in contract.shaping:
            if helper not in referenced:
                report(
                    RULE_UNSHAPED_RESPONSE,
                    node.lineno,
                    f"@ecall {node.name!r} declares shaping helper "
                    f"{helper!r} in its leakage contract but never "
                    "references it — the declared bound is not applied",
                    helper,
                )

    # ---- verb contracts: the wire table carries no unknown verbs -----
    if module == SERVER_MODULE:
        found_table = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if RPC_TABLE_NAME not in targets or not isinstance(node.value, ast.Dict):
                continue
            found_table = True
            for key in node.value.keys:
                if not isinstance(key, ast.Constant) or not isinstance(
                    key.value, str
                ):
                    continue
                verb = key.value
                if verb not in VERB_CONTRACTS:
                    report(
                        RULE_UNDECLARED_CONTRACT,
                        key.lineno,
                        f"wire verb {verb!r} has no declared leakage "
                        "contract; add one to analysis.leakage."
                        "VERB_CONTRACTS before exposing it",
                        verb,
                    )
        # A snippet merely *claiming* the server module name (fixtures,
        # unit-test sources) is not the wire surface; anchor the
        # module-wide shaping checks on the RPC table being present.
        if not found_table:
            return findings
        module_refs = _module_names(tree)
        if ERROR_SHAPER not in module_refs:
            report(
                RULE_UNSHAPED_RESPONSE,
                1,
                f"{SERVER_MODULE} never references {ERROR_SHAPER!r}; every "
                "verb's error path must emit typed, scrubbed error frames",
                ERROR_SHAPER,
            )
        for verb, contract in VERB_CONTRACTS.items():
            for helper in contract.shaping:
                if helper not in module_refs:
                    report(
                        RULE_UNSHAPED_RESPONSE,
                        1,
                        f"wire verb {verb!r} declares shaping helper "
                        f"{helper!r} but the server never references it",
                        helper,
                    )

    return findings

"""Process-wide tuning knobs and the shared worker-pool registry.

One knob governs the parallel fan-out of both untrusted hot paths: the
attribute-vector *scan* pool (``repro.encdict.attrvect``) and the data
owner's *build* pipeline (``repro.encdict.pipeline``). It is resolved in
priority order:

1. an explicit value passed through the server / pipeline configuration,
2. the ``ENCDBDB_SCAN_WORKERS`` environment variable,
3. the built-in default of :data:`DEFAULT_WORKERS`.

The registry below replaces the per-module pool globals that used to live
in ``attrvect.py`` and ``pipeline.py``. Pools are named, created lazily,
resized only upward (an executor serving in-flight work is never shrunk),
and torn down idempotently — :func:`shutdown_pools` may race with itself,
with :func:`shared_pool`, and with late ``shutdown_pool`` calls from
several server instances without double-shutdown or leaked executors. All
registry state is guarded by :data:`_pools_lock`; executor ``shutdown()``
itself runs outside the lock so a ``wait=True`` teardown cannot block pool
creation on other threads.

This module deliberately has no repro-internal imports so every layer
(``sgx.cache``, ``encdict.attrvect``, ``encdict.pipeline``, ``net.server``)
can use it without creating an import cycle.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

#: Built-in worker-pool fan-out when neither configuration nor environment
#: says otherwise (the hard-coded value of the pre-PR-4 scan pool).
DEFAULT_WORKERS = 4

#: Environment variable overriding the default worker count.
WORKERS_ENV = "ENCDBDB_SCAN_WORKERS"

#: Environment variable switching adaptive serial/parallel dispatch off
#: (``0`` disables it; anything else — including unset — leaves it on).
ADAPTIVE_ENV = "ENCDBDB_ADAPTIVE_DISPATCH"

_logger = logging.getLogger("repro.runtime")

#: Registry names of the long-lived pools.
SCAN_POOL = "attrvect-scan"
BUILD_THREAD_POOL = "build-thread"
BUILD_PROCESS_POOL = "build-process"
CLUSTER_POOL = "cluster-scatter"

_pools_lock = threading.RLock()
_pools: dict[str, Executor] = {}  # guarded-by: _pools_lock
_pool_workers: dict[str, int] = {}  # guarded-by: _pools_lock


def detected_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


_clamp_lock = threading.Lock()
_clamp_logged = False  # guarded-by: _clamp_lock


def _log_clamp_once(workers: int, cores: int) -> None:
    """Report the cpu-count clamp exactly once per process."""
    global _clamp_logged
    with _clamp_lock:
        if _clamp_logged:
            return
        _clamp_logged = True
    _logger.info(
        "worker default clamped from %d to %d (%d CPU core(s) available; "
        "set %s to override)",
        DEFAULT_WORKERS,
        workers,
        cores,
        WORKERS_ENV,
    )


def configured_workers(default: int | None = None) -> int:
    """Resolve the shared worker-count knob (always at least 1).

    A malformed environment value is ignored rather than fatal — a typo in
    an operator's shell must not take the server down — and any resolved
    value is clamped to ``>= 1`` so pool construction never fails. Explicit
    values (environment or ``default``) are taken as operator intent; the
    built-in default alone is additionally clamped to the detected CPU
    count, so an unconfigured 1-core host never spins a 4-worker pool that
    only adds scheduling overhead. The clamp is logged once per process.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    if default is not None:
        return max(1, default)
    cores = detected_cores()
    workers = max(1, min(DEFAULT_WORKERS, cores))
    if workers < DEFAULT_WORKERS:
        _log_clamp_once(workers, cores)
    return workers


def shared_pool(
    name: str,
    max_workers: int,
    *,
    kind: str = "thread",
    thread_name_prefix: str | None = None,
) -> Executor:
    """The named process-wide executor, created or grown on demand.

    Creating an executor per call would cost more than the fan-out saves,
    so each name maps to one long-lived pool. A request for more workers
    than the current pool has replaces it (the old pool drains in the
    background); a request for fewer reuses the larger pool — resizing is
    upward-only, matching the pre-registry semantics of both hot paths.
    """
    if kind not in ("thread", "process"):
        raise ValueError(f"unknown pool kind {kind!r}")
    stale: Executor | None = None
    with _pools_lock:
        pool = _pools.get(name)
        if pool is None or _pool_workers.get(name, 0) < max_workers:
            stale = pool
            if kind == "process":
                pool = ProcessPoolExecutor(max_workers=max_workers)
            else:
                pool = ThreadPoolExecutor(
                    max_workers=max_workers,
                    thread_name_prefix=thread_name_prefix or f"encdbdb-{name}",
                )
            _pools[name] = pool
            _pool_workers[name] = max_workers
    if stale is not None:
        stale.shutdown(wait=False)
    return pool


def active_pool(name: str) -> Executor | None:
    """The live executor registered under ``name``, if any (no creation)."""
    with _pools_lock:
        return _pools.get(name)


def pool_workers(name: str) -> int:
    """Worker count of the named pool (0 when it does not exist)."""
    with _pools_lock:
        return _pool_workers.get(name, 0)


def shutdown_pool(name: str, *, wait: bool = True) -> None:
    """Release one named pool. Idempotent and concurrent-safe.

    The registry entry is atomically removed under the lock, so at most one
    caller observes (and shuts down) any given executor; everyone else sees
    an already-empty slot and returns.
    """
    with _pools_lock:
        pool = _pools.pop(name, None)
        _pool_workers.pop(name, None)
    if pool is not None:
        pool.shutdown(wait=wait)


def shutdown_pools(wait: bool = True) -> None:
    """Release every registered pool (server shutdown hook). Idempotent.

    Concurrent calls partition the registry between themselves: each
    executor is shut down exactly once, and a ``shared_pool`` racing with
    the teardown simply creates a fresh pool afterwards.
    """
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
        _pool_workers.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


# ----------------------------------------------------------------------
# Adaptive serial/parallel dispatch (PR 6)
# ----------------------------------------------------------------------
#: How much larger than the measured pool-dispatch overhead the total work
#: must be before fanning out can plausibly win wall-clock.
PARALLEL_WORK_MARGIN = 4.0

_dispatch_lock = threading.Lock()
_dispatch_overhead: float | None = None  # guarded-by: _dispatch_lock
_kernel_costs: dict[str, float] = {}  # guarded-by: _dispatch_lock
_dispatch_log: dict[str, dict] = {}  # guarded-by: _dispatch_lock


@dataclass(frozen=True)
class DispatchDecision:
    """One serial-vs-parallel choice, with the reason it was made."""

    parallel: bool
    workers: int
    reason: str


def adaptive_dispatch_enabled() -> bool:
    """Whether adaptive dispatch is on (``ENCDBDB_ADAPTIVE_DISPATCH != 0``)."""
    return os.environ.get(ADAPTIVE_ENV, "1") != "0"


def dispatch_overhead_s() -> float:
    """Measured per-task overhead of routing work through a thread pool.

    Calibrated lazily, once per process: a burst of no-op tasks through a
    throwaway two-worker pool times the submit/schedule/collect round trip
    that every parallel fan-out pays per item. Parallelism can only win
    when the real per-item work dwarfs this number.
    """
    global _dispatch_overhead
    with _dispatch_lock:
        if _dispatch_overhead is not None:
            return _dispatch_overhead
    tasks = 256
    pool = ThreadPoolExecutor(max_workers=2, thread_name_prefix="encdbdb-cal")
    try:
        list(pool.map(_noop, range(16)))  # warm the workers up
        start = time.perf_counter()
        list(pool.map(_noop, range(tasks)))
        elapsed = time.perf_counter() - start
    finally:
        pool.shutdown(wait=False)
    per_task = max(elapsed / tasks, 1e-7)
    with _dispatch_lock:
        if _dispatch_overhead is None:
            _dispatch_overhead = per_task
        return _dispatch_overhead


def _noop(_item) -> None:
    return None


def note_kernel_cost(kind: str, per_item_s: float) -> None:
    """Fold one measured per-item kernel cost into the running estimate.

    Callers on the hot paths (e.g. the attribute-vector scan) report how
    long one unit of serial work took; :func:`dispatch_decision` compares
    the estimate against the calibrated pool overhead. An exponential
    moving average smooths scheduling noise.
    """
    if per_item_s <= 0.0:
        return
    with _dispatch_lock:
        previous = _kernel_costs.get(kind)
        _kernel_costs[kind] = (
            per_item_s if previous is None else 0.5 * previous + 0.5 * per_item_s
        )


def kernel_cost(kind: str) -> float | None:
    """The current per-item cost estimate for ``kind`` (None = unmeasured)."""
    with _dispatch_lock:
        return _kernel_costs.get(kind)


def dispatch_decision(
    kind: str,
    *,
    requested_workers: int,
    jobs: int | None = None,
    estimated_serial_s: float | None = None,
    adaptive: bool | None = None,
    record: bool = True,
) -> DispatchDecision:
    """Choose serial or parallel execution for one fan-out opportunity.

    The decision combines what is free to know (requested workers, job
    count, detected cores) with what calibration measured (pool dispatch
    overhead vs. the caller's estimated serial cost). ``adaptive=False``
    forces the legacy behaviour — parallel whenever workers and jobs allow
    — which tests use to pin the pool machinery on any host; ``None``
    defers to :func:`adaptive_dispatch_enabled`.
    """
    workers = max(1, requested_workers)
    if workers <= 1:
        decision = DispatchDecision(False, 1, "a single worker was requested")
    elif jobs is not None and jobs <= 1:
        decision = DispatchDecision(False, 1, "a single work item cannot fan out")
    elif adaptive is False or (adaptive is None and not adaptive_dispatch_enabled()):
        decision = DispatchDecision(True, workers, "adaptive dispatch disabled")
    else:
        cores = detected_cores()
        if cores < 2:
            decision = DispatchDecision(
                False, 1, f"{cores} CPU core(s): threads cannot overlap"
            )
        elif (
            estimated_serial_s is not None
            and estimated_serial_s
            < PARALLEL_WORK_MARGIN * (jobs or workers) * dispatch_overhead_s()
        ):
            decision = DispatchDecision(
                False, 1, "estimated work is smaller than pool dispatch overhead"
            )
        else:
            decision = DispatchDecision(
                True, min(workers, cores), f"{cores} CPU core(s) available"
            )
    if record:
        with _dispatch_lock:
            log = _dispatch_log.setdefault(kind, {"serial": 0, "parallel": 0})
            log["parallel" if decision.parallel else "serial"] += 1
            log["last"] = {
                "parallel": decision.parallel,
                "workers": decision.workers,
                "reason": decision.reason,
            }
    return decision


def dispatch_stats() -> dict[str, dict]:
    """Per-kind dispatch counters and last decisions (for BenchStats)."""
    with _dispatch_lock:
        return {kind: dict(log) for kind, log in _dispatch_log.items()}


def last_dispatch(kind: str) -> dict | None:
    """The most recent decision recorded for ``kind``, if any."""
    with _dispatch_lock:
        log = _dispatch_log.get(kind)
        return dict(log["last"]) if log and "last" in log else None


def reset_dispatch_stats() -> None:
    """Zero the dispatch log (test/benchmark isolation)."""
    with _dispatch_lock:
        _dispatch_log.clear()


def dispatch_summary() -> str:
    """One human-readable line of dispatch state (EXPLAIN annotation)."""
    parts = [
        f"adaptive {'on' if adaptive_dispatch_enabled() else 'off'}",
        f"{detected_cores()} core(s)",
    ]
    for kind, log in sorted(dispatch_stats().items()):
        last = log.get("last")
        if last is not None:
            mode = "parallel" if last["parallel"] else "serial"
            parts.append(f"{kind}: {mode} ({last['reason']})")
    return "; ".join(parts)


def map_on_build_pool(func, items, *, max_workers: int | None = None) -> list:
    """Run a side-effect-free function over items on the build thread pool.

    The incremental merge uses this for its untrusted preparation — blob
    collection and plaintext dictionary rebuilds across dirty partitions —
    while the enclave rebuild ecalls stay strictly serial. Falls back to a
    plain loop when the fan-out cannot help (one item or one worker), so
    results are always exactly ``[func(item) for item in items]``.
    """
    items = list(items)
    workers = max_workers if max_workers is not None else configured_workers()
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    pool = shared_pool(BUILD_THREAD_POOL, workers)
    return list(pool.map(func, items))

"""Process-wide tuning knobs shared by the worker pools.

One knob governs the parallel fan-out of both untrusted hot paths: the
attribute-vector *scan* pool (``repro.encdict.attrvect``) and the data
owner's *build* pipeline (``repro.encdict.pipeline``). It is resolved in
priority order:

1. an explicit value passed through the server / pipeline configuration,
2. the ``ENCDBDB_SCAN_WORKERS`` environment variable,
3. the built-in default of :data:`DEFAULT_WORKERS`.

This module deliberately has no repro-internal imports so every layer
(``sgx.cache``, ``encdict.attrvect``, ``encdict.pipeline``, ``net.server``)
can read the knob without creating an import cycle.
"""

from __future__ import annotations

import os

#: Built-in worker-pool fan-out when neither configuration nor environment
#: says otherwise (the hard-coded value of the pre-PR-4 scan pool).
DEFAULT_WORKERS = 4

#: Environment variable overriding the default worker count.
WORKERS_ENV = "ENCDBDB_SCAN_WORKERS"


def configured_workers(default: int | None = None) -> int:
    """Resolve the shared worker-count knob (always at least 1).

    A malformed environment value is ignored rather than fatal — a typo in
    an operator's shell must not take the server down — and any resolved
    value is clamped to ``>= 1`` so pool construction never fails.
    """
    if default is None:
        default = DEFAULT_WORKERS
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, default)

"""Process-wide tuning knobs and the shared worker-pool registry.

One knob governs the parallel fan-out of both untrusted hot paths: the
attribute-vector *scan* pool (``repro.encdict.attrvect``) and the data
owner's *build* pipeline (``repro.encdict.pipeline``). It is resolved in
priority order:

1. an explicit value passed through the server / pipeline configuration,
2. the ``ENCDBDB_SCAN_WORKERS`` environment variable,
3. the built-in default of :data:`DEFAULT_WORKERS`.

The registry below replaces the per-module pool globals that used to live
in ``attrvect.py`` and ``pipeline.py``. Pools are named, created lazily,
resized only upward (an executor serving in-flight work is never shrunk),
and torn down idempotently — :func:`shutdown_pools` may race with itself,
with :func:`shared_pool`, and with late ``shutdown_pool`` calls from
several server instances without double-shutdown or leaked executors. All
registry state is guarded by :data:`_pools_lock`; executor ``shutdown()``
itself runs outside the lock so a ``wait=True`` teardown cannot block pool
creation on other threads.

This module deliberately has no repro-internal imports so every layer
(``sgx.cache``, ``encdict.attrvect``, ``encdict.pipeline``, ``net.server``)
can use it without creating an import cycle.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

#: Built-in worker-pool fan-out when neither configuration nor environment
#: says otherwise (the hard-coded value of the pre-PR-4 scan pool).
DEFAULT_WORKERS = 4

#: Environment variable overriding the default worker count.
WORKERS_ENV = "ENCDBDB_SCAN_WORKERS"

#: Registry names of the three long-lived pools.
SCAN_POOL = "attrvect-scan"
BUILD_THREAD_POOL = "build-thread"
BUILD_PROCESS_POOL = "build-process"

_pools_lock = threading.RLock()
_pools: dict[str, Executor] = {}  # guarded-by: _pools_lock
_pool_workers: dict[str, int] = {}  # guarded-by: _pools_lock


def configured_workers(default: int | None = None) -> int:
    """Resolve the shared worker-count knob (always at least 1).

    A malformed environment value is ignored rather than fatal — a typo in
    an operator's shell must not take the server down — and any resolved
    value is clamped to ``>= 1`` so pool construction never fails.
    """
    if default is None:
        default = DEFAULT_WORKERS
    raw = os.environ.get(WORKERS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, default)


def shared_pool(
    name: str,
    max_workers: int,
    *,
    kind: str = "thread",
    thread_name_prefix: str | None = None,
) -> Executor:
    """The named process-wide executor, created or grown on demand.

    Creating an executor per call would cost more than the fan-out saves,
    so each name maps to one long-lived pool. A request for more workers
    than the current pool has replaces it (the old pool drains in the
    background); a request for fewer reuses the larger pool — resizing is
    upward-only, matching the pre-registry semantics of both hot paths.
    """
    if kind not in ("thread", "process"):
        raise ValueError(f"unknown pool kind {kind!r}")
    stale: Executor | None = None
    with _pools_lock:
        pool = _pools.get(name)
        if pool is None or _pool_workers.get(name, 0) < max_workers:
            stale = pool
            if kind == "process":
                pool = ProcessPoolExecutor(max_workers=max_workers)
            else:
                pool = ThreadPoolExecutor(
                    max_workers=max_workers,
                    thread_name_prefix=thread_name_prefix or f"encdbdb-{name}",
                )
            _pools[name] = pool
            _pool_workers[name] = max_workers
    if stale is not None:
        stale.shutdown(wait=False)
    return pool


def active_pool(name: str) -> Executor | None:
    """The live executor registered under ``name``, if any (no creation)."""
    with _pools_lock:
        return _pools.get(name)


def pool_workers(name: str) -> int:
    """Worker count of the named pool (0 when it does not exist)."""
    with _pools_lock:
        return _pool_workers.get(name, 0)


def shutdown_pool(name: str, *, wait: bool = True) -> None:
    """Release one named pool. Idempotent and concurrent-safe.

    The registry entry is atomically removed under the lock, so at most one
    caller observes (and shuts down) any given executor; everyone else sees
    an already-empty slot and returns.
    """
    with _pools_lock:
        pool = _pools.pop(name, None)
        _pool_workers.pop(name, None)
    if pool is not None:
        pool.shutdown(wait=wait)


def shutdown_pools(wait: bool = True) -> None:
    """Release every registered pool (server shutdown hook). Idempotent.

    Concurrent calls partition the registry between themselves: each
    executor is shut down exactly once, and a ``shared_pool`` racing with
    the teardown simply creates a fresh pool afterwards.
    """
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
        _pool_workers.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def map_on_build_pool(func, items, *, max_workers: int | None = None) -> list:
    """Run a side-effect-free function over items on the build thread pool.

    The incremental merge uses this for its untrusted preparation — blob
    collection and plaintext dictionary rebuilds across dirty partitions —
    while the enclave rebuild ecalls stay strictly serial. Falls back to a
    plain loop when the fan-out cannot help (one item or one worker), so
    results are always exactly ``[func(item) for item in items]``.
    """
    items = list(items)
    workers = max_workers if max_workers is not None else configured_workers()
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    pool = shared_pool(BUILD_THREAD_POOL, workers)
    return list(pool.map(func, items))

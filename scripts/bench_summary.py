#!/usr/bin/env python3
"""Concatenate every BENCH_*.json into one BENCH_summary.json.

Each benchmark suite writes a machine-readable result file under
``benchmarks/results/`` (``BENCH_net.json``, ``BENCH_fastpath.json``,
``BENCH_partition.json``, ``BENCH_build.json``, ``BENCH_cluster.json``,
...). The CI ``bench-summary`` job downloads the per-job artifacts and
runs this script to publish one combined document keyed by benchmark
name::

    {"build": {...}, "cluster": {...}, "fastpath": {...}, "net": {...}}

Usage: ``python scripts/bench_summary.py [results_dir] [output_path]``
(defaults: ``benchmarks/results``, ``<results_dir>/BENCH_summary.json``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def summarize(results_dir: Path) -> dict:
    summary: dict[str, object] = {}
    for path in sorted(results_dir.rglob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        name = path.stem.removeprefix("BENCH_")
        try:
            summary[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}: invalid JSON ({exc})")
    return summary


def main(argv: list[str]) -> int:
    results_dir = Path(argv[1]) if len(argv) > 1 else Path("benchmarks/results")
    output = (
        Path(argv[2]) if len(argv) > 2 else results_dir / "BENCH_summary.json"
    )
    summary = summarize(results_dir)
    if not summary:
        raise SystemExit(f"no BENCH_*.json files found under {results_dir}")
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"{output}: {', '.join(sorted(summary))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

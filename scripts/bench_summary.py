#!/usr/bin/env python3
"""Concatenate every BENCH_*.json into one BENCH_summary.json.

Each benchmark suite writes a machine-readable result file under
``benchmarks/results/`` (``BENCH_net.json``, ``BENCH_fastpath.json``,
``BENCH_partition.json``, ``BENCH_build.json``, ``BENCH_cluster.json``,
``BENCH_workloads.json``, ...). The CI ``bench-summary`` job downloads the
per-job artifacts and runs this script to publish one combined document
keyed by benchmark name::

    {"build": {...}, "cluster": {...}, "net": {...}, "workloads": {...}}

Failures are loud: a malformed result file or a required-but-missing
benchmark aborts the summary instead of silently publishing a partial
document a regression could hide in.

Usage: ``python scripts/bench_summary.py [results_dir] [output_path]
[--require name,name,...]`` (defaults: ``benchmarks/results``,
``<results_dir>/BENCH_summary.json``, no required set).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def summarize(results_dir: Path) -> dict:
    if not results_dir.is_dir():
        raise SystemExit(f"{results_dir}: not a directory")
    summary: dict[str, object] = {}
    for path in sorted(results_dir.rglob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        name = path.stem.removeprefix("BENCH_")
        try:
            summary[name] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}: invalid JSON ({exc})")
    return summary


def main(argv: list[str]) -> int:
    required: set[str] = set()
    positional: list[str] = []
    arguments = iter(argv[1:])
    for argument in arguments:
        if argument == "--require":
            value = next(arguments, None)
            if value is None:
                raise SystemExit("--require needs a comma-separated name list")
            required.update(name for name in value.split(",") if name)
        elif argument.startswith("--require="):
            value = argument.partition("=")[2]
            required.update(name for name in value.split(",") if name)
        else:
            positional.append(argument)
    results_dir = Path(positional[0]) if positional else Path("benchmarks/results")
    output = (
        Path(positional[1])
        if len(positional) > 1
        else results_dir / "BENCH_summary.json"
    )
    summary = summarize(results_dir)
    if not summary:
        raise SystemExit(f"no BENCH_*.json files found under {results_dir}")
    missing = sorted(required - set(summary))
    if missing:
        raise SystemExit(
            f"required benchmark result(s) missing under {results_dir}: "
            + ", ".join(f"BENCH_{name}.json" for name in missing)
        )
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"{output}: {', '.join(sorted(summary))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

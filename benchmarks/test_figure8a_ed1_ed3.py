"""Figure 8a: latencies of ED1-ED3 vs MonetDB and PlainDBDB.

Shape expectations from the paper:

1. EncDBDB/PlainDBDB beat MonetDB on the sorted and rotated kinds for both
   columns and range sizes (logarithmic string comparisons + linear integer
   comparisons vs linear string comparisons).
2. The encryption+enclave overhead of EncDBDB over PlainDBDB is small for
   ED1/ED2 (paper: ~0.36 ms, i.e. ~8.9%).
3. ED2 costs only a little more than ED1 (special binary search).
4. ED3's linear dictionary scan makes it heavily dependent on |D|: C2 (few
   uniques) is far cheaper than C1 (millions of uniques at full scale).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from fig8_common import (
    assert_monetdb_loses_to_dictionary_search,
    measure_cell,
    render_figure,
)


@pytest.fixture(scope="module")
def cells(workbench):
    measured = {}
    for kind_name in ("ED1", "ED2", "ED3"):
        for column_name in ("C1", "C2"):
            for range_size in (2, 100):
                measured[(kind_name, column_name, range_size)] = measure_cell(
                    workbench, kind_name, column_name, range_size
                )
    return measured


@pytest.mark.parametrize("kind_name", ["ED1", "ED2", "ED3"])
@pytest.mark.parametrize("column_name", ["C1", "C2"])
def test_benchmark_encdbdb_query(benchmark, workbench, kind_name, column_name):
    """pytest-benchmark timing of one EncDBDB query per kind and column."""
    engine = workbench.engine("EncDBDB", column_name, kind_name)
    query = workbench.queries(column_name, 100)[0]
    benchmark.pedantic(lambda: engine.run(query), rounds=3, iterations=1)


def test_report_figure8a(benchmark, cells, workbench):
    text = render_figure(
        f"Figure 8a (ED1-ED3): mean latency of {workbench.settings.queries} "
        f"random range queries over {workbench.settings.rows} rows (paper: 500 "
        "queries, up to 10.9M rows)",
        cells,
    )
    write_result("figure8a_ed1_ed3", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(cells) == 12


def test_sorted_and_rotated_beat_monetdb(shape, cells, workbench):
    for kind_name in ("ED1", "ED2"):
        for column_name in ("C1", "C2"):
            for range_size in (2, 100):
                assert_monetdb_loses_to_dictionary_search(
                    cells[(kind_name, column_name, range_size)],
                    rows=workbench.settings.rows,
                )


def test_monetdb_gap_grows_with_scale(shape, workbench):
    """The paper's crossover: MonetDB's linear string scan falls further
    behind EncDBDB as the dataset grows (Figure 8a's x-axis)."""
    from repro.bench.harness import measure_query_latency

    small_rows = max(5_000, workbench.settings.rows // 4)
    large_rows = workbench.settings.rows * 3
    ratios = {}
    for rows in (small_rows, large_rows):
        queries = workbench.queries("C1", 2, rows)
        monetdb = workbench.engine("MonetDB", "C1", rows=rows)
        encdbdb = workbench.engine("EncDBDB", "C1", "ED1", rows=rows)
        monetdb_stats = measure_query_latency(monetdb.run, queries)
        encdbdb_stats = measure_query_latency(encdbdb.run, queries)
        ratios[rows] = encdbdb_stats.mean / monetdb_stats.mean
    assert ratios[large_rows] < ratios[small_rows]
    assert ratios[large_rows] < 1.0  # EncDBDB strictly wins at scale


def test_encdbdb_overhead_over_plaindbdb_is_small(shape, cells):
    """Observation 3 of the paper: encryption is cheap for ED1/ED2."""
    for kind_name in ("ED1", "ED2"):
        for column_name in ("C1", "C2"):
            for range_size in (2, 100):
                stats = cells[(kind_name, column_name, range_size)]
                # Within 5x of the plaintext twin (paper: 8.9%; pure Python
                # pays more per decryption but stays the same order).
                assert stats["EncDBDB"].mean < 5 * stats["PlainDBDB"].mean + 5e-3


def test_ed2_close_to_ed1(shape, cells):
    for column_name in ("C1", "C2"):
        for range_size in (2, 100):
            ed1 = cells[("ED1", column_name, range_size)]["EncDBDB"].mean
            ed2 = cells[("ED2", column_name, range_size)]["EncDBDB"].mean
            assert ed2 < 3 * ed1 + 5e-3


def test_ed3_depends_on_unique_count(shape, cells):
    """ED3's linear scan: C2's small dictionary is much cheaper than C1's."""
    for range_size in (2, 100):
        c1 = cells[("ED3", "C1", range_size)]["EncDBDB"].mean
        c2 = cells[("ED3", "C2", range_size)]["EncDBDB"].mean
        assert c2 < c1


def test_ed3_slower_than_ed1_on_high_cardinality(shape, cells):
    c1_ed3 = cells[("ED3", "C1", 2)]["EncDBDB"].mean
    c1_ed1 = cells[("ED1", "C1", 2)]["EncDBDB"].mean
    assert c1_ed3 > c1_ed1

"""Partitioned column store: parallel scans and incremental merge (PR 3).

Two claims are measured and asserted, then emitted as machine-readable
``results/BENCH_partition.json`` (uploaded by the ``partition-bench`` CI
job):

1. **Parallel partition scans win.** A >=1M-row attribute vector split into
   partitions and scanned through the shared pool (numpy comparisons
   release the GIL) beats the single-partition sequential scan wall-clock,
   for both the range path (ED1, sorted dictionary) and the explicit
   ValueID path (ED3, unsorted dictionary) — and returns the identical
   RecordID set.

2. **Merge cost tracks dirty partitions.** Merging a table with one dirty
   partition rebuilds one partition slot and is faster than merging the
   same table with every partition dirty.

A third test pins partitioned deployments to the seed single-partition
results on the Figure 7 result-count fixtures: the per-query result counts
must match the plaintext ground truth exactly under both layouts.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, write_result
from repro import EncDBDBSystem
from repro.bench import BenchStats
from repro.bench.report import format_table
from repro.crypto.drbg import HmacDrbg
from repro.encdict.attrvect import (
    attr_vect_search,
    attr_vect_search_many,
    shutdown_scan_pools,
)
from repro.encdict.search import DUMMY_RANGE, SearchResult
from repro.runtime import SCAN_POOL, last_dispatch
from repro.workloads.queries import expected_result_rows, random_range_queries

SCAN_ROWS = 1 << 20  # >= 1M rows, the acceptance floor
SCAN_PARTITIONS = 8
SCAN_WORKERS = 4
SCAN_ROUNDS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


CORES = _available_cores()
MERGE_ROWS = 4000
MERGE_PARTITION_ROWS = 500

#: Search shapes of the two scan paths: ED1's padded ranges and ED3's
#: explicit ValueID list (Table 4's O(|AV|) and O(|AV|*|vid|) rows).
SEARCHES = {
    "ED1": SearchResult(
        ranges=((100, 140), (300, 310), (512, 600), (700, 701))
        + (DUMMY_RANGE,) * 4
    ),
    "ED3": SearchResult(vids=tuple(range(0, 200, 4))),
}


def _best_of(fn, rounds: int = SCAN_ROUNDS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def attribute_vector() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.integers(0, 1024, size=SCAN_ROWS).astype(np.int64)


@pytest.fixture(scope="module")
def scan_runs(attribute_vector):
    chunk = SCAN_ROWS // SCAN_PARTITIONS
    starts = list(range(0, SCAN_ROWS, chunk))
    runs = {}
    for kind, search in SEARCHES.items():
        sequential_s, sequential = _best_of(
            lambda: attr_vect_search(attribute_vector, search, max_workers=1)
        )
        jobs = [
            (attribute_vector[start : start + chunk], search) for start in starts
        ]

        def parallel_union():
            parts = attr_vect_search_many(jobs, max_workers=SCAN_WORKERS)
            return np.concatenate(
                [rids + start for rids, start in zip(parts, starts)]
            )

        parallel_s, parallel = _best_of(parallel_union)
        assert parallel.tolist() == sequential.tolist()  # identical RecordIDs
        runs[kind] = {
            "rows": SCAN_ROWS,
            "partitions": SCAN_PARTITIONS,
            "workers": SCAN_WORKERS,
            "cores": CORES,
            "matches": int(len(sequential)),
            "sequential_s": sequential_s,
            "parallel_s": parallel_s,
            "speedup": sequential_s / parallel_s,
            "dispatch": last_dispatch(SCAN_POOL),
        }
    shutdown_scan_pools()
    return runs


def test_parallel_partition_scan_beats_single_partition(scan_runs):
    if CORES < 2:
        # A thread pool cannot beat wall-clock on one core; the numbers are
        # still recorded in BENCH_partition.json, and CI (multi-core
        # runners) enforces the strict claim.
        pytest.skip(f"needs >= 2 CPU cores to parallelize (have {CORES})")
    for kind, run in scan_runs.items():
        assert run["parallel_s"] < run["sequential_s"], (kind, run)


def test_parallel_request_never_slower_than_serial(scan_runs):
    """The PR 6 floor, enforced on every host: asking for workers must not
    lose wall-clock — adaptive dispatch picks serial when a pool cannot win
    (the pre-PR-6 numbers on one core were 0.82x)."""
    for kind, run in scan_runs.items():
        assert run["speedup"] >= 0.95, (kind, run)


# ----------------------------------------------------------------------
# Incremental merge: cost proportional to dirty partitions
# ----------------------------------------------------------------------
def _merge_system() -> EncDBDBSystem:
    system = EncDBDBSystem.create(seed=1234)
    system.execute("CREATE TABLE m (v ED1 INTEGER)")
    system.bulk_load(
        "m",
        {"v": list(range(MERGE_ROWS))},
        partition_rows=MERGE_PARTITION_ROWS,
    )
    return system


@pytest.fixture(scope="module")
def merge_runs():
    partitions = MERGE_ROWS // MERGE_PARTITION_ROWS
    runs = {}
    for label, deletes in (
        ("one_dirty", [(0, 9)]),
        (
            "all_dirty",
            [
                (start, start)
                for start in range(0, MERGE_ROWS, MERGE_PARTITION_ROWS)
            ],
        ),
    ):
        system = _merge_system()
        for low, high in deletes:
            system.execute(f"DELETE FROM m WHERE v BETWEEN {low} AND {high}")
        start = time.perf_counter()
        system.merge("m")
        wall_s = time.perf_counter() - start
        stats = system.server.executor.last_merge_stats
        runs[label] = {
            "partitions_total": stats.partitions_total,
            "partitions_rebuilt": stats.partitions_rebuilt,
            "partitions_kept": stats.partitions_kept,
            "wall_s": wall_s,
        }
    runs["one_dirty"]["expected_rebuilt"] = 1
    runs["all_dirty"]["expected_rebuilt"] = partitions
    return runs


def test_merge_rebuilds_only_dirty_partitions(merge_runs):
    assert merge_runs["one_dirty"]["partitions_rebuilt"] == 1
    assert (
        merge_runs["all_dirty"]["partitions_rebuilt"]
        == merge_runs["all_dirty"]["expected_rebuilt"]
    )
    assert merge_runs["one_dirty"]["wall_s"] < merge_runs["all_dirty"]["wall_s"]


# ----------------------------------------------------------------------
# Figure 7 result-count fixtures: partitioned == seed single-partition
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def figure7_equivalence(workbench):
    rows = min(2000, workbench.settings.rows)
    values = workbench.column("C1", rows)
    queries = random_range_queries(
        values, 2, 8, HmacDrbg(b"partition-fig7")
    ) + random_range_queries(values, 100, 8, HmacDrbg(b"partition-fig7-rs100"))

    counts: dict[str, list[int]] = {}
    for label, partition_rows in (("single", None), ("partitioned", 512)):
        system = EncDBDBSystem.create(seed=77)
        system.execute("CREATE TABLE f (c ED1 VARCHAR(40))")
        system.bulk_load("f", {"c": list(values)}, partition_rows=partition_rows)
        counts[label] = []
        for query in queries:
            low = str(query.low).replace("'", "''")
            high = str(query.high).replace("'", "''")
            counts[label].append(
                system.query(
                    f"SELECT COUNT(*) FROM f WHERE c BETWEEN '{low}' AND '{high}'"
                ).scalar()
            )
    truth = [expected_result_rows(values, query) for query in queries]
    return {"rows": rows, "queries": len(queries), "truth": truth, **counts}


def test_partitioned_matches_seed_on_figure7_fixtures(figure7_equivalence):
    assert figure7_equivalence["partitioned"] == figure7_equivalence["single"]
    assert figure7_equivalence["single"] == figure7_equivalence["truth"]


def test_report_partition_bench(scan_runs, merge_runs, figure7_equivalence):
    rows = [
        (
            kind,
            f"{run['rows']:,}",
            run["partitions"],
            run["workers"],
            f"{run['sequential_s'] * 1e3:.1f}",
            f"{run['parallel_s'] * 1e3:.1f}",
            f"{run['speedup']:.2f}x",
        )
        for kind, run in scan_runs.items()
    ]
    text = format_table(
        f"Partitioned attribute-vector scan ({SCAN_ROWS:,} rows, "
        f"{SCAN_PARTITIONS} partitions, {SCAN_WORKERS} workers, best of "
        f"{SCAN_ROUNDS})",
        ["kind", "rows", "parts", "workers", "seq ms", "par ms", "speedup"],
        rows,
    )
    text += (
        "\nIncremental merge: "
        f"{merge_runs['one_dirty']['partitions_rebuilt']}/"
        f"{merge_runs['one_dirty']['partitions_total']} partitions rebuilt in "
        f"{merge_runs['one_dirty']['wall_s'] * 1e3:.1f} ms (one dirty) vs "
        f"{merge_runs['all_dirty']['partitions_rebuilt']}/"
        f"{merge_runs['all_dirty']['partitions_total']} in "
        f"{merge_runs['all_dirty']['wall_s'] * 1e3:.1f} ms (all dirty).\n"
    )
    write_result("partition_scan", text)

    payload = {
        "scan": scan_runs,
        "merge": merge_runs,
        "figure7_equivalence": figure7_equivalence,
        "bench_stats": BenchStats.capture().to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_partition.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert (RESULTS_DIR / "BENCH_partition.json").exists()

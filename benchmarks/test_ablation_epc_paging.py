"""Ablation: EncDBDB's out-of-enclave dictionaries vs an in-EPC design.

Table 1's competitors (EnclaveDB in particular) keep whole data structures
inside the enclave; the paper argues EncDBDB's design — dictionaries in
untrusted memory, single entries loaded and decrypted on demand — is what
makes the 96 MiB usable EPC a non-limitation (§6.2 note under Table 6).

This ablation plays both strategies through the architectural cost model:

- **EncDBDB**: per probe, one untrusted load + one AES-GCM decryption.
- **in-EPC strawman**: the dictionary lives in enclave pages; per probe one
  EPC touch, faulting (encrypted page swap) whenever the dictionary exceeds
  the usable EPC and the page is not resident.

The crossover must sit at the usable-EPC boundary: below 96 MiB the in-EPC
design wins (no decryption per probe), beyond it paging dominates and
EncDBDB's constant per-probe cost wins — exactly the paper's argument.
"""

from __future__ import annotations

import math

import pytest

from conftest import write_result
from repro.bench.report import format_bytes, format_table
from repro.crypto.drbg import HmacDrbg
from repro.sgx.costs import CostModel
from repro.sgx.memory import EPC_USABLE_BYTES, PAGE_BYTES, EpcModel

ENTRY_BYTES = 40  # a 12-char value + PAE overhead
QUERIES = 200
PROBES_FACTOR = 2  # two binary searches per query


def _encdbdb_cycles(dictionary_entries: int) -> float:
    """Modeled per-query cycles for the out-of-enclave design."""
    cost = CostModel()
    probes = PROBES_FACTOR * max(1, math.ceil(math.log2(dictionary_entries)))
    for _ in range(QUERIES):
        cost.record_ecall()
        for _ in range(probes):
            cost.record_untrusted_load()
            cost.record_decryption(ENTRY_BYTES)
    return cost.estimated_cycles() / QUERIES


def _in_epc_cycles(dictionary_entries: int, rng: HmacDrbg) -> float:
    """Modeled per-query cycles for the EnclaveDB-style in-EPC design."""
    cost = CostModel()
    epc = EpcModel(cost, strict=False)
    dictionary_bytes = dictionary_entries * ENTRY_BYTES
    allocation = epc.allocate(dictionary_bytes)
    probes = PROBES_FACTOR * max(1, math.ceil(math.log2(dictionary_entries)))
    for _ in range(QUERIES):
        cost.record_ecall()
        for _ in range(probes):
            # Binary-search probes land on effectively random pages.
            offset = rng.randint(0, dictionary_bytes - 1)
            epc.touch(allocation, offset)
    return cost.estimated_cycles() / QUERIES


@pytest.fixture(scope="module")
def model_results():
    rng = HmacDrbg(b"epc-ablation")
    sizes = [2**14, 2**18, 2**21, 2**23, 2**25]  # 16k .. 33.5M entries
    rows = []
    for entries in sizes:
        dictionary_bytes = entries * ENTRY_BYTES
        rows.append(
            (
                entries,
                dictionary_bytes,
                _encdbdb_cycles(entries),
                _in_epc_cycles(entries, rng.fork(str(entries))),
            )
        )
    return rows


def test_report_epc_ablation(benchmark, model_results):
    rows = [
        (
            f"{entries:,}",
            format_bytes(dictionary_bytes),
            "yes" if dictionary_bytes > EPC_USABLE_BYTES else "no",
            f"{encdbdb:12.0f}",
            f"{in_epc:12.0f}",
        )
        for entries, dictionary_bytes, encdbdb, in_epc in model_results
    ]
    text = format_table(
        "Ablation: modeled cycles/query, out-of-enclave (EncDBDB) vs in-EPC "
        f"dictionary ({QUERIES} queries, usable EPC = "
        f"{EPC_USABLE_BYTES // (1024 * 1024)} MiB)",
        ["|D|", "dict size", "exceeds EPC", "EncDBDB cyc", "in-EPC cyc"],
        rows,
    )
    write_result("ablation_epc_paging", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows


def test_in_epc_wins_while_dictionary_fits(shape, model_results):
    for entries, dictionary_bytes, encdbdb, in_epc in model_results:
        if dictionary_bytes < EPC_USABLE_BYTES // 2:
            assert in_epc < encdbdb, entries


def test_encdbdb_wins_once_paging_starts(shape, model_results):
    saw_large = False
    for entries, dictionary_bytes, encdbdb, in_epc in model_results:
        if dictionary_bytes > 2 * EPC_USABLE_BYTES:
            saw_large = True
            assert encdbdb < in_epc, entries
    assert saw_large


def test_encdbdb_cost_is_size_insensitive(shape, model_results):
    """Per-query cost grows only logarithmically for EncDBDB."""
    smallest = model_results[0][2]
    largest = model_results[-1][2]
    assert largest < 3 * smallest


def test_enclave_memory_stays_constant_for_encdbdb(shape):
    """The real system never allocates EPC for dictionaries — measured."""
    from repro.bench.engines import EncDbdbColumnEngine
    from repro.columnstore.types import VarcharType
    from repro.encdict.options import ED1
    from repro.workloads.queries import RangeQuery

    engine = EncDbdbColumnEngine(
        [f"v{i:05d}" for i in range(4000)],
        ED1,
        value_type=VarcharType(10),
        rng=HmacDrbg(b"epc-real"),
    )
    engine.run(RangeQuery("v00100", "v00500"))
    assert engine.host._enclave.epc.allocated_pages == 0

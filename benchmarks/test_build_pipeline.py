"""Parallel, batched, streaming build pipeline (PR 4).

Measures the EncDBDB bulk-load path and emits machine-readable
``results/BENCH_build.json`` (uploaded by the ``build-bench`` CI job):

1. **Table 6 build-time shape.** Per-kind single-column build times for
   ED1/ED3/ED7/ED9: the repetition-hiding kinds pad every value's
   frequency up to a block bound, so their dictionaries are strictly
   larger and their builds strictly slower than the repetition-revealing
   kinds over the same data.

2. **Multi-core build speedup.** A >=1M-row, 4-column (ED1+ED3+ED7+ED9)
   bulk load through the process-pool pipeline vs. the serial builder.
   The parallel artifacts must be byte-for-byte identical to the serial
   ones (per-partition child DRBGs make worker scheduling invisible);
   on >=4 cores the load must be >=2x faster.

Scale knob: ``ENCDBDB_BUILD_BENCH_ROWS`` (default 1,048,576 — the
acceptance floor; shrink locally for quick runs).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, write_result
from repro import EncDBDBSystem
from repro.bench import BenchStats
from repro.bench.report import format_table
from repro.columnstore.types import parse_type
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae
from repro.encdict.builder import encdb_build_partitioned
from repro.encdict.options import kind_by_name
from repro.encdict.pipeline import BUILD_DISPATCH, shutdown_build_pools
from repro.runtime import last_dispatch

BUILD_ROWS = int(os.environ.get("ENCDBDB_BUILD_BENCH_ROWS", 1 << 20))
BUILD_PARTITIONS = 8
BUILD_PARTITION_ROWS = max(1, BUILD_ROWS // BUILD_PARTITIONS)
BUILD_WORKERS = 4
BSMAX = 4
DISTINCT = 1024
KINDS = ("ED1", "ED3", "ED7", "ED9")
#: Per-kind shape section runs on a slice: the shape (hiding >> revealing)
#: is scale-free and the full-size builds are already timed by the load.
KIND_ROWS = max(1, BUILD_ROWS // 8)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


CORES = _available_cores()


def _column_values(seed: int, rows: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return rng.integers(0, DISTINCT, size=rows).astype(np.int64).tolist()


@pytest.fixture(scope="module")
def kind_runs():
    """Single-column serial build time per ED kind (Table 6 shape)."""
    values = _column_values(7, KIND_ROWS)
    runs = {}
    for kind_name in KINDS:
        pae = default_pae(rng=HmacDrbg(f"shape-{kind_name}"))
        start = time.perf_counter()
        builds = encdb_build_partitioned(
            values,
            kind_by_name(kind_name),
            partition_rows=max(1, KIND_ROWS // BUILD_PARTITIONS),
            value_type=parse_type("INTEGER"),
            key=b"\x06" * 16,
            pae=pae,
            rng=HmacDrbg(f"shape-rng-{kind_name}"),
            bsmax=BSMAX,
            table_name="bench",
            column_name="c",
        )
        runs[kind_name] = {
            "rows": KIND_ROWS,
            "build_s": time.perf_counter() - start,
            "dictionary_entries": sum(b.stats.dictionary_entries for b in builds),
            "encrypt_operations": pae.encrypt_count,
        }
    return runs


def _deploy(executor: str, max_workers: int, columns) -> tuple[float, EncDBDBSystem]:
    system = EncDBDBSystem.create(seed=2026)
    specs = ", ".join(f"c{i} {kind} INTEGER" for i, kind in enumerate(KINDS, 1))
    system.execute(f"CREATE TABLE bench ({specs})")
    start = time.perf_counter()
    system.bulk_load(
        "bench",
        columns,
        partition_rows=BUILD_PARTITION_ROWS,
        max_workers=max_workers,
        executor=executor,
    )
    return time.perf_counter() - start, system


@pytest.fixture(scope="module")
def load_runs(tmp_path_factory):
    """Serial vs. process-pool bulk load of the 4-column table, plus the
    byte-level comparison of the resulting storage files."""
    columns = {
        f"c{i}": _column_values(100 + i, BUILD_ROWS)
        for i in range(1, len(KINDS) + 1)
    }
    # Best of two interleaved rounds: a single full-load measurement carries
    # several percent of wall-clock noise, enough to flake the >= 0.95x
    # dispatch floor when both paths resolve to the same serial build.
    serial_s = parallel_s = float("inf")
    for _ in range(2):
        elapsed, serial_system = _deploy("serial", 1, columns)
        serial_s = min(serial_s, elapsed)
        elapsed, parallel_system = _deploy("process", BUILD_WORKERS, columns)
        parallel_s = min(parallel_s, elapsed)
    shutdown_build_pools()

    tmp = tmp_path_factory.mktemp("build-bench")
    serial_system.save(tmp / "serial.encdbdb")
    parallel_system.save(tmp / "parallel.encdbdb")
    byte_identical = (
        (tmp / "serial.encdbdb").read_bytes()
        == (tmp / "parallel.encdbdb").read_bytes()
    )
    return {
        "rows": BUILD_ROWS,
        "columns": len(KINDS),
        "kinds": list(KINDS),
        "partitions": BUILD_PARTITIONS,
        "workers": BUILD_WORKERS,
        "cores": CORES,
        "executor": "process",
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "byte_identical": byte_identical,
        "dispatch": last_dispatch(BUILD_DISPATCH),
    }


def test_build_time_shape_matches_table6(kind_runs):
    # Repetition hiding pads frequencies: more entries, more encryptions,
    # more time than the repetition-revealing kind with the same order.
    for revealing, hiding in (("ED1", "ED7"), ("ED3", "ED9")):
        assert (
            kind_runs[hiding]["dictionary_entries"]
            > kind_runs[revealing]["dictionary_entries"]
        )
        assert (
            kind_runs[hiding]["encrypt_operations"]
            > kind_runs[revealing]["encrypt_operations"]
        )
        assert kind_runs[hiding]["build_s"] > kind_runs[revealing]["build_s"]


def test_parallel_load_is_byte_identical_to_serial(load_runs):
    """The determinism acceptance criterion: worker count and scheduling
    must be invisible in the artifacts, on every machine."""
    assert load_runs["byte_identical"]


def test_parallel_load_speedup(load_runs):
    if CORES < 4:
        # One core cannot demonstrate a multi-core speedup; the numbers
        # are still recorded in BENCH_build.json and CI (multi-core
        # runners) enforces the >=2x acceptance claim.
        pytest.skip(f"needs >= 4 CPU cores to parallelize (have {CORES})")
    assert load_runs["speedup"] >= 2.0, load_runs


def test_parallel_request_never_slower_than_serial(load_runs):
    """PR 6 floor on every host: requesting the process pool must not lose
    wall-clock — adaptive dispatch falls back to the serial builder when
    forking workers cannot pay for itself (0.81x on one core before)."""
    assert load_runs["speedup"] >= 0.95, load_runs


def test_report_build_bench(kind_runs, load_runs):
    rows = [
        (
            kind,
            f"{run['rows']:,}",
            f"{run['dictionary_entries']:,}",
            f"{run['encrypt_operations']:,}",
            f"{run['build_s'] * 1e3:.1f}",
        )
        for kind, run in kind_runs.items()
    ]
    text = format_table(
        f"Encrypted-dictionary build time by kind ({KIND_ROWS:,} rows, "
        f"bsmax={BSMAX})",
        ["kind", "rows", "dict entries", "encrypts", "build ms"],
        rows,
    )
    text += (
        f"\nBulk load ({BUILD_ROWS:,} rows x {len(KINDS)} columns, "
        f"{BUILD_PARTITIONS} partitions, {BUILD_WORKERS} process workers, "
        f"{CORES} cores): serial {load_runs['serial_s']:.2f} s, parallel "
        f"{load_runs['parallel_s']:.2f} s, speedup "
        f"{load_runs['speedup']:.2f}x, byte-identical "
        f"{load_runs['byte_identical']}.\n"
    )
    write_result("build_pipeline", text)

    payload = {
        "kinds": kind_runs,
        "load": load_runs,
        "bench_stats": BenchStats.capture().to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_build.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

"""Query service through every phase of an online rotation (PR 8).

Drives reader threads against a partitioned ED3 column while the column is
rotated to ED9 under a fresh storage-key epoch, and records per-phase
latency percentiles and throughput — baseline, prep, backfill, tighten,
finalize, and post-adopt. Emits ``results/BENCH_rotation.json`` (uploaded
by the ``migration-smoke`` CI job and folded into the bench summary).

Acceptance: queries are served in **every** phase (no phase with zero
completed queries — the rotation never takes the column offline), every
observed result is correct, and the whole rotation finishes while reads
flow. Short phases are held open for ``MIN_PHASE_SECONDS`` so each one
accumulates a measurable sample: the dwell happens *between* plan steps,
i.e. exactly in the intermediate states the phase model promises are
serveable.

Scale knobs: ``ENCDBDB_ROTATION_BENCH_ROWS`` (default 20,000; the paper-
scale run uses 1,000,000), ``ENCDBDB_ROTATION_BENCH_READERS`` (default 4).
"""

from __future__ import annotations

import json
import os
import threading
import time

from conftest import RESULTS_DIR, write_result
from repro.bench.report import format_table
from repro.client.session import EncDBDBSystem

import pytest

ROWS = int(os.environ.get("ENCDBDB_ROTATION_BENCH_ROWS", 20_000))
READERS = int(os.environ.get("ENCDBDB_ROTATION_BENCH_READERS", 4))
PARTITIONS = 8
PARTITION_ROWS = -(-ROWS // PARTITIONS)
DISTINCT = 499
VALUES = [(i * 7919) % DISTINCT for i in range(ROWS)]
QUERIES = [(q * 37 % 420, q * 37 % 420 + 40) for q in range(16)]
MIN_PHASE_SECONDS = 0.4
PHASES = ("baseline", "prep", "backfill", "tighten", "finalize", "post")


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.fixture(scope="module")
def rotation_run():
    system = EncDBDBSystem.create(seed=17)
    system.execute("CREATE TABLE bench (v ED3 INTEGER)")
    system.bulk_load("bench", {"v": VALUES}, partition_rows=PARTITION_ROWS)
    expected = {
        (lo, hi): sum(1 for v in VALUES if lo <= v <= hi) for lo, hi in QUERIES
    }

    current_phase = ["baseline"]
    records: list[tuple[str, float]] = []  # (phase at start, seconds)
    stop = threading.Event()
    errors: list[str] = []

    def reader(reader_id: int) -> None:
        seq = reader_id
        while not stop.is_set():
            lo, hi = QUERIES[seq % len(QUERIES)]
            seq += READERS
            phase = current_phase[0]
            begin = time.perf_counter()
            try:
                count = len(
                    system.query(
                        f"SELECT v FROM bench WHERE v BETWEEN {lo} AND {hi}"
                    ).column("v")
                )
            except Exception as exc:  # noqa: BLE001 - recorded, fails the test
                errors.append(f"{phase}: {exc!r}")
                return
            elapsed = time.perf_counter() - begin
            if count != expected[(lo, hi)]:
                errors.append(
                    f"{phase}: ({lo},{hi}) -> {count}, want {expected[(lo, hi)]}"
                )
                return
            records.append((phase, elapsed))

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(READERS)
    ]
    for thread in threads:
        thread.start()

    phase_entered: dict[str, float] = {"baseline": time.perf_counter()}
    phase_left: dict[str, float] = {}

    def enter(phase: str) -> None:
        now = time.perf_counter()
        previous = current_phase[0]
        if phase == previous:
            return
        # Hold the previous phase open until it has a measurable window.
        dwell = MIN_PHASE_SECONDS - (now - phase_entered[previous])
        if dwell > 0:
            time.sleep(dwell)
        phase_left[previous] = time.perf_counter()
        phase_entered[phase] = phase_left[previous]
        current_phase[0] = phase

    try:
        status = system.server.migrate_start(
            "bench", "v", new_kind="ED9", rotate_key=True
        )
        while status.state == "running":
            enter(status.phase)  # the phase the next step executes in
            status = system.server.migrate_step("bench", "v")
        assert status.state == "done", status.error
        enter("post")
        time.sleep(MIN_PHASE_SECONDS)
    finally:
        phase_left[current_phase[0]] = time.perf_counter()
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

    assert not errors, errors[0]
    by_phase: dict[str, list[float]] = {phase: [] for phase in PHASES}
    for phase, elapsed in records:
        by_phase[phase].append(elapsed)
    summary = {}
    for phase in PHASES:
        samples = by_phase[phase]
        window = phase_left[phase] - phase_entered[phase]
        summary[phase] = {
            "queries": len(samples),
            "window_s": round(window, 4),
            "throughput_qps": round(len(samples) / window, 2) if window else 0.0,
            "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3) if samples else None,
            "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3) if samples else None,
        }
    return {
        "rows": ROWS,
        "partitions": PARTITIONS,
        "readers": READERS,
        "distinct_values": DISTINCT,
        "rotation": "ED3->ED9, key epoch 0->1",
        "min_phase_seconds": MIN_PHASE_SECONDS,
        "phases": summary,
        "final_state": "done",
    }


@pytest.fixture(scope="module", autouse=True)
def emit_results(rotation_run):
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rotation.json").write_text(
        json.dumps(rotation_run, indent=2, sort_keys=True) + "\n"
    )
    rows = [
        [
            phase,
            str(stats["queries"]),
            f"{stats['window_s']:.2f}",
            f"{stats['throughput_qps']:.1f}",
            "-" if stats["p50_ms"] is None else f"{stats['p50_ms']:.1f}",
            "-" if stats["p99_ms"] is None else f"{stats['p99_ms']:.1f}",
        ]
        for phase, stats in rotation_run["phases"].items()
    ]
    write_result(
        "rotation_migration",
        f"Online rotation under load — {ROWS} rows, {PARTITIONS} partitions, "
        f"{READERS} reader threads, {rotation_run['rotation']}\n\n"
        + format_table(
            "query service by migration phase",
            ["phase", "queries", "window s", "qps", "p50 ms", "p99 ms"],
            rows,
        ),
    )
    return rotation_run


def test_no_phase_goes_dark(rotation_run):
    """The headline claim: every phase served queries."""
    for phase, stats in rotation_run["phases"].items():
        assert stats["queries"] > 0, f"phase {phase} served zero queries"
        assert stats["throughput_qps"] > 0, phase


def test_latency_stays_bounded_by_one_partition_swap(rotation_run):
    """p99 during the rotation must stay within the same regime as the
    baseline — a reader never waits for more than one partition-sized
    critical section, not for the whole migration."""
    baseline = rotation_run["phases"]["baseline"]["p99_ms"]
    for phase in ("backfill", "tighten", "finalize"):
        p99 = rotation_run["phases"][phase]["p99_ms"]
        assert p99 < baseline * 50 + 1000, (phase, p99, baseline)

"""Shared driver for the Figure 8 latency benchmarks.

Each Figure 8 cell compares MonetDB, PlainDBDB, and EncDBDB on the same
column and query workload for one encrypted dictionary. The driver measures
per-query latency with 95% CIs (the paper's reporting convention), renders
the cell table, and returns the stats for shape assertions.
"""

from __future__ import annotations

from repro.bench.harness import LatencyStats, measure_query_latency
from repro.bench.report import format_table

ENGINES = ("MonetDB", "PlainDBDB", "EncDBDB")


def measure_cell(
    workbench, kind_name: str, column_name: str, range_size: int, *, bsmax: int = 10
) -> dict[str, LatencyStats]:
    """Latency stats of all three engines for one Figure 8 cell."""
    queries = workbench.queries(column_name, range_size)
    stats = {}
    for engine_name in ENGINES:
        engine = workbench.engine(engine_name, column_name, kind_name, bsmax=bsmax)
        stats[engine_name] = measure_query_latency(engine.run, queries)
    return stats


def render_figure(
    title: str, cells: dict[tuple[str, str, int], dict[str, LatencyStats]]
) -> str:
    """One text table for a whole Figure 8 panel."""
    rows = []
    for (kind_name, column_name, range_size), stats in sorted(cells.items()):
        for engine_name in ENGINES:
            cell_stats = stats[engine_name]
            rows.append(
                (
                    kind_name,
                    column_name,
                    f"RS={range_size}",
                    engine_name,
                    f"{cell_stats.mean_ms:10.3f}",
                    f"{cell_stats.ci95_ms:8.3f}",
                    cell_stats.total_results,
                )
            )
    return format_table(
        title,
        ["kind", "column", "RS", "engine", "mean ms", "ci95 ms", "rows returned"],
        rows,
    )


def assert_monetdb_loses_to_dictionary_search(
    stats: dict[str, LatencyStats], *, rows: int
) -> None:
    """Paper Figure 8a observation 1: EncDBDB and PlainDBDB outperform
    MonetDB (log string comparisons + int scan vs linear string scan).

    MonetDB's disadvantage grows linearly with the dataset while EncDBDB's
    per-query fixed cost (one ecall plus a handful of decryptions) does not,
    so at very small scales the two nearly tie; below 50k rows the check
    allows measurement-noise-level slack, above it the strict paper ordering
    must hold (see ``test_monetdb_gap_grows_with_scale``).
    """
    assert stats["PlainDBDB"].mean < stats["MonetDB"].mean
    slack = 2.0 if rows < 50_000 else 1.0
    assert stats["EncDBDB"].mean < slack * stats["MonetDB"].mean


def encryption_overhead(stats: dict[str, LatencyStats]) -> float:
    """EncDBDB-vs-PlainDBDB overhead in seconds (paper: ~0.36 ms avg)."""
    return stats["EncDBDB"].mean - stats["PlainDBDB"].mean

"""Vectorized enclave kernels (PR 6): measured, guarded, and emitted as
machine-readable ``results/BENCH_kernels.json`` (uploaded by the
``kernels-bench`` CI job).

Three claims:

1. **Packed-ordinal ED3 scan throughput.** A warm vectorized dictionary
   scan (decrypt-once packed array + one boolean-mask kernel) must beat the
   warm scalar reference path (per-entry cache hits, Python loop) by >= 5x
   on one core — the ISSUE targets >= 10x and the measured ratio is
   recorded.

2. **Adaptive dispatch never loses.** Requesting a parallel attribute-vector
   scan must never end up slower than 0.95x the serial scan: on few-core
   hosts the dispatcher chooses serial (the pre-PR-6 regression was a 0.82x
   "speedup"), on multi-core hosts the pool genuinely wins.

3. **Results stay identical** across every path measured here.

Every record carries :class:`repro.bench.BenchStats` so regressions can be
attributed to host shape (cores, workers, dispatch decisions).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, write_result
from repro.bench import BenchStats
from repro.bench.report import format_table
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.attrvect import (
    attr_vect_search,
    attr_vect_search_many,
    shutdown_scan_pools,
)
from repro.encdict.builder import encdb_build
from repro.encdict.options import ED3
from repro.encdict.search import (
    DUMMY_RANGE,
    DictionarySearcher,
    OrdinalRange,
    SearchResult,
)
from repro.runtime import detected_cores, reset_dispatch_stats
from repro.sgx.cache import EnclaveLruCache
from repro.sgx.costs import CostModel

DICT_ENTRIES = 4096
DICT_ROUNDS = 5
SCAN_ROWS = 1 << 20
SCAN_ROUNDS = 3
SCAN_WORKERS = 4

#: CI regression guards. The scalar/vectorized floor is deliberately below
#: the >= 10x target so host noise cannot flake the job; the dispatch floor
#: says "parallel may never lose more than measurement noise".
MIN_VECTOR_SPEEDUP = 5.0
TARGET_VECTOR_SPEEDUP = 10.0
MIN_DISPATCH_RATIO = 0.95


def _best_of(fn, rounds: int):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# 1. ED3 dictionary scan: scalar reference vs packed-ordinal kernel
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ed3_run():
    rng = HmacDrbg(b"kernel-bench")
    pae = default_pae(rng=rng.fork("pae"))
    master = pae_gen(rng=rng.fork("master"))
    key = derive_column_key(master, "t", "c")
    values = [f"v{i:05d}" for i in range(DICT_ENTRIES)]
    build = encdb_build(
        values,
        ED3,
        value_type=VarcharType(12),
        key=key,
        pae=pae,
        rng=rng.fork("build"),
        bsmax=3,
        table_name="t",
        column_name="c",
    )
    vt = build.dictionary.value_type
    search = OrdinalRange(vt.ordinal("v01000"), vt.ordinal("v03000"))

    def measure(vectorized: bool):
        searcher = DictionarySearcher(
            pae,
            CostModel(),
            EnclaveLruCache(budget_bytes=1 << 24),
            vectorized=vectorized,
        )
        cold_s, _ = _best_of(
            lambda: searcher.search(build.dictionary, search, key=key), rounds=1
        )
        warm_s, result = _best_of(
            lambda: searcher.search(build.dictionary, search, key=key),
            rounds=DICT_ROUNDS,
        )
        return cold_s, warm_s, result

    scalar_cold_s, scalar_warm_s, scalar_result = measure(vectorized=False)
    vector_cold_s, vector_warm_s, vector_result = measure(vectorized=True)
    assert vector_result.vids == scalar_result.vids  # identical ValueIDs
    return {
        "entries": DICT_ENTRIES,
        "matches": len(scalar_result.vids),
        "rounds": DICT_ROUNDS,
        "scalar_cold_s": scalar_cold_s,
        "scalar_warm_s": scalar_warm_s,
        "vectorized_cold_s": vector_cold_s,
        "vectorized_warm_s": vector_warm_s,
        "warm_speedup": scalar_warm_s / vector_warm_s,
        "warm_entries_per_s": DICT_ENTRIES / vector_warm_s,
        "min_speedup": MIN_VECTOR_SPEEDUP,
        "target_speedup": TARGET_VECTOR_SPEEDUP,
    }


def test_vectorized_ed3_scan_beats_scalar(ed3_run):
    assert ed3_run["warm_speedup"] >= MIN_VECTOR_SPEEDUP, ed3_run


# ----------------------------------------------------------------------
# 2. Adaptive dispatch: a parallel request never loses to serial
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def dispatch_runs():
    reset_dispatch_stats()
    av = np.random.default_rng(9).integers(0, 1024, size=SCAN_ROWS)
    av = av.astype(np.int64)
    chunk = SCAN_ROWS // 8
    searches = {
        "scan": SearchResult(ranges=((100, 300), DUMMY_RANGE)),
        "scan_many": SearchResult(ranges=((100, 300), DUMMY_RANGE)),
    }
    runs = {}

    serial_s, serial = _best_of(
        lambda: attr_vect_search(av, searches["scan"], max_workers=1),
        rounds=SCAN_ROUNDS,
    )
    requested_s, requested = _best_of(
        lambda: attr_vect_search(av, searches["scan"], max_workers=SCAN_WORKERS),
        rounds=SCAN_ROUNDS,
    )
    assert requested.tolist() == serial.tolist()
    runs["scan"] = {
        "rows": SCAN_ROWS,
        "serial_s": serial_s,
        "parallel_request_s": requested_s,
        "ratio": serial_s / requested_s,
    }

    jobs = [
        (av[start : start + chunk], searches["scan_many"])
        for start in range(0, SCAN_ROWS, chunk)
    ]
    serial_s, serial_parts = _best_of(
        lambda: attr_vect_search_many(jobs, max_workers=1), rounds=SCAN_ROUNDS
    )
    requested_s, requested_parts = _best_of(
        lambda: attr_vect_search_many(jobs, max_workers=SCAN_WORKERS),
        rounds=SCAN_ROUNDS,
    )
    for got, want in zip(requested_parts, serial_parts):
        assert got.tolist() == want.tolist()
    runs["scan_many"] = {
        "rows": SCAN_ROWS,
        "partitions": len(jobs),
        "serial_s": serial_s,
        "parallel_request_s": requested_s,
        "ratio": serial_s / requested_s,
    }
    shutdown_scan_pools()
    return runs


def test_parallel_request_never_slower_than_serial(dispatch_runs):
    for label, run in dispatch_runs.items():
        assert run["ratio"] >= MIN_DISPATCH_RATIO, (label, run)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


def test_report_kernels_bench(ed3_run, dispatch_runs):
    stats = BenchStats.capture()
    text = format_table(
        f"ED3 dictionary scan, {DICT_ENTRIES:,} entries (warm, best of "
        f"{DICT_ROUNDS})",
        ["path", "warm ms", "speedup"],
        [
            ("scalar", f"{ed3_run['scalar_warm_s'] * 1e3:.2f}", "1.00x"),
            (
                "vectorized",
                f"{ed3_run['vectorized_warm_s'] * 1e3:.2f}",
                f"{ed3_run['warm_speedup']:.2f}x",
            ),
        ],
    )
    text += (
        f"\nAdaptive dispatch ({detected_cores()} core(s), "
        f"{SCAN_WORKERS} workers requested, {SCAN_ROWS:,} rows): "
        + "; ".join(
            f"{label} serial/parallel-request ratio {run['ratio']:.2f}x"
            for label, run in dispatch_runs.items()
        )
        + ".\n"
    )
    write_result("kernels", text)

    payload = {
        "ed3_dictionary_scan": ed3_run,
        "adaptive_dispatch": {
            **dispatch_runs,
            "min_ratio": MIN_DISPATCH_RATIO,
        },
        "bench_stats": stats.to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert (RESULTS_DIR / "BENCH_kernels.json").exists()

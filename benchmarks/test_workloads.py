"""Analytics pushdown on the TPC-H-lite workload (PR 9): measured, guarded,
and emitted as machine-readable ``results/BENCH_workloads.json`` (uploaded
by the ``workloads-bench`` CI job).

Three claims over a ``lineitem`` fact table of ``ENCDBDB_WORKLOAD_ROWS``
rows (default 1 000 000; CI runs smaller):

1. **Pushed-down GROUP BY beats row shipping.** The pricing-summary query
   (low-cardinality group column, ED1 measure) through the enclave's
   ``aggregate_groups`` ecall must be >= 5x faster end to end than the
   proxy-side reference path that decrypts every row.

2. **Wire bytes collapse.** The same query's server result must shrink by
   >= 50x: padded group frames instead of a million ciphertext blobs.

3. **Equivalence.** Every query of the TPC-H-lite mix returns identical
   rows through both paths, and EXPLAIN names a routing decision for each.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import RESULTS_DIR, write_result
from repro.bench import BenchStats
from repro.bench.report import format_table
from repro.client.session import EncDBDBSystem
from repro.net.protocol import encode_payload
from repro.sql.parser import parse
from repro.sql.planner import SelectPlan
from repro.sql.printer import pushdown_lines
from repro.workloads import (
    LINEITEM_DDL,
    evaluate_mix,
    generate_lineitem,
    tpch_lite_mix,
)

WORKLOAD_ROWS = int(os.environ.get("ENCDBDB_WORKLOAD_ROWS", 1_000_000))
GROUPBY_ROUNDS = 2

#: CI regression guards (the ISSUE's acceptance floors).
MIN_GROUPBY_SPEEDUP = 5.0
MIN_WIRE_REDUCTION = 50.0

GROUPBY_SQL = (
    "SELECT returnflag, COUNT(*), SUM(price), AVG(price), MIN(price), "
    "MAX(price) FROM lineitem GROUP BY returnflag"
)


def _best_of(fn, rounds: int):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def system():
    system = EncDBDBSystem.create(seed=b"workloads-bench")
    system.execute(LINEITEM_DDL)
    system.bulk_load("lineitem", generate_lineitem(WORKLOAD_ROWS))
    return system


def _encrypted_plan(system, sql: str) -> SelectPlan:
    """The plan as it crosses the trust boundary (filters encrypted)."""
    proxy = system.proxy
    plan = proxy._planner.plan(parse(sql))
    return SelectPlan(
        plan.table,
        plan.needed_columns,
        proxy._encrypt_filter(plan.table, plan.filter),
        plan.post,
    )


@pytest.fixture(scope="module")
def groupby_run(system):
    ref_s, ref = _best_of(lambda: system.query(GROUPBY_SQL), GROUPBY_ROUNDS)
    system.proxy.enable_pushdown()
    push_s, push = _best_of(lambda: system.query(GROUPBY_SQL), GROUPBY_ROUNDS)
    decisions = system.proxy.last_pushdown
    system.proxy.enable_pushdown(False)
    assert push.rows == ref.rows  # claim 3, on the headline query itself
    assert decisions is not None and any(d.pushed for d in decisions)

    plan = _encrypted_plan(system, GROUPBY_SQL)
    ref_wire = len(encode_payload(system.server.execute_select(plan)))
    push_result = system.server.execute_select_pushdown(plan)
    push_wire = len(encode_payload(push_result))
    return {
        "rows": WORKLOAD_ROWS,
        "rounds": GROUPBY_ROUNDS,
        "sql": GROUPBY_SQL,
        "reference_s": ref_s,
        "pushdown_s": push_s,
        "speedup": ref_s / push_s,
        "reference_wire_bytes": ref_wire,
        "pushdown_wire_bytes": push_wire,
        "wire_reduction": ref_wire / push_wire,
        "frames": len(push_result.aggregate.frames),
        "routing": [
            f"{d.clause} -> {'enclave' if d.pushed else 'proxy'}: {d.reason}"
            for d in decisions
        ],
        "min_speedup": MIN_GROUPBY_SPEEDUP,
        "min_wire_reduction": MIN_WIRE_REDUCTION,
    }


def test_pushed_down_groupby_speedup(groupby_run):
    assert groupby_run["speedup"] >= MIN_GROUPBY_SPEEDUP, groupby_run


def test_pushed_down_groupby_wire_reduction(groupby_run):
    assert groupby_run["wire_reduction"] >= MIN_WIRE_REDUCTION, groupby_run


@pytest.fixture(scope="module")
def mix_run(system):
    proxy = system.proxy

    def reference(sql: str) -> list:
        proxy.enable_pushdown(False)
        return system.query(sql).rows

    def pushdown(sql: str) -> list:
        proxy.enable_pushdown(True)
        try:
            return system.query(sql).rows
        finally:
            proxy.enable_pushdown(False)

    def routing(sql: str) -> list[str]:
        plan = _encrypted_plan(system, sql)
        return pushdown_lines(system.server.explain_pushdown(plan))[1:]

    return evaluate_mix(
        tpch_lite_mix(),
        reference=reference,
        pushdown=pushdown,
        routing=routing,
        repeats=1,
    )


def test_mix_equivalence_and_routing(mix_run):
    for evaluation in mix_run:
        assert evaluation.equivalent, evaluation.to_dict()
        # EXPLAIN must name a routing decision for every mix query.
        assert evaluation.routing, evaluation.query
        assert all("->" in line for line in evaluation.routing)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


def test_report_workloads_bench(groupby_run, mix_run):
    stats = BenchStats.capture()
    text = format_table(
        f"TPC-H-lite pricing summary, {WORKLOAD_ROWS:,} rows (best of "
        f"{GROUPBY_ROUNDS})",
        ["path", "seconds", "wire bytes"],
        [
            (
                "proxy-side reference",
                f"{groupby_run['reference_s']:.3f}",
                f"{groupby_run['reference_wire_bytes']:,}",
            ),
            (
                "enclave pushdown",
                f"{groupby_run['pushdown_s']:.3f}",
                f"{groupby_run['pushdown_wire_bytes']:,}",
            ),
        ],
    )
    text += (
        f"\nspeedup {groupby_run['speedup']:.1f}x (floor "
        f"{MIN_GROUPBY_SPEEDUP}x); wire reduction "
        f"{groupby_run['wire_reduction']:.0f}x (floor "
        f"{MIN_WIRE_REDUCTION:.0f}x).\n\n"
    )
    text += format_table(
        "TPC-H-lite mix (reference vs pushdown, equivalence asserted)",
        ["query", "ref s", "push s", "speedup", "routed"],
        [
            (
                evaluation.query.name,
                f"{evaluation.reference_seconds:.3f}",
                f"{evaluation.pushdown_seconds:.3f}",
                f"{evaluation.speedup:.2f}x",
                "; ".join(
                    line.split(":")[0].strip() for line in evaluation.routing
                ),
            )
            for evaluation in mix_run
        ],
    )
    write_result("workloads", text)

    payload = {
        "rows": WORKLOAD_ROWS,
        "groupby_pushdown": groupby_run,
        "mix": [evaluation.to_dict() for evaluation in mix_run],
        "bench_stats": stats.to_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_workloads.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert (RESULTS_DIR / "BENCH_workloads.json").exists()

"""Query fast path (PR 1): repeated-query and multi-filter workloads.

Measures the three fast-path layers against the paper-faithful baseline
(``FastPathConfig.disabled()``, the configuration the Figure 8 benchmarks
use):

- the in-enclave dictionary-entry cache on a repeated range-query workload
  (wall clock and cost-model decryptions, per dictionary kind);
- ``dict_search_batch`` on a 3-filter conjunctive query (exactly one
  boundary crossing where the baseline pays three);
- the EPC-budget invariant of the cache under the same workload.

Alongside the human-readable ``results/fastpath.txt`` table this suite
emits machine-readable ``results/BENCH_fastpath.json`` with the raw
wall-clock numbers and cost-model deltas.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import RESULTS_DIR, write_result
from repro.bench.engines import EncDbdbColumnEngine
from repro.bench.report import format_table
from repro.client.session import EncDBDBSystem
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import kind_by_name
from repro.sgx.cache import FastPathConfig
from repro.workloads.queries import random_range_queries

# Fixed workload so the speedup assertions below are meaningful: the
# acceptance thresholds (>=3x wall clock, >=5x fewer decryptions on the
# unsorted kind) were calibrated against exactly this shape.
ROWS = 20_000
DISTINCT = 5_000
RANGE_SIZE = 2
NUM_QUERIES = 10
ROUNDS = 10
KINDS = ("ED1", "ED2", "ED3")


def _engines(kind_name: str):
    """(baseline, fast) engines over the same column and key material."""
    values = [f"val-{i % DISTINCT:05d}" for i in range(ROWS)]
    value_type = VarcharType(12)
    kind = kind_by_name(kind_name)
    baseline = EncDbdbColumnEngine(
        values, kind, value_type=value_type, rng=HmacDrbg(b"fastpath-bench")
    )
    fast = EncDbdbColumnEngine(
        values,
        kind,
        value_type=value_type,
        rng=HmacDrbg(b"fastpath-bench"),
        fastpath=FastPathConfig(),
    )
    queries = random_range_queries(values, RANGE_SIZE, NUM_QUERIES, HmacDrbg(b"q"))
    return baseline, fast, queries


def _run_rounds(engine, queries):
    """(wall_seconds, cost_delta, totals) over ROUNDS repetitions."""
    cost = engine.host.cost_model
    before = cost.snapshot()
    start = time.perf_counter()
    totals = [engine.run(query) for _ in range(ROUNDS) for query in queries]
    wall = time.perf_counter() - start
    return wall, cost.diff(before), totals


@pytest.fixture(scope="module")
def repeated_runs():
    """Baseline-vs-fast measurements of the repeated-query workload."""
    measured = {}
    for kind_name in KINDS:
        baseline, fast, queries = _engines(kind_name)
        base_wall, base_delta, base_totals = _run_rounds(baseline, queries)
        fast_wall, fast_delta, fast_totals = _run_rounds(fast, queries)
        assert fast_totals == base_totals, kind_name  # same answers, always
        cache = fast.host._enclave.entry_cache
        measured[kind_name] = {
            "baseline": {"wall_s": base_wall, "cost_delta": base_delta},
            "fast": {"wall_s": fast_wall, "cost_delta": fast_delta},
            "speedup_wall": base_wall / fast_wall,
            "decryption_ratio": (
                base_delta["decryptions"] / fast_delta["decryptions"]
            ),
            "cache": {
                "budget_bytes": cache.budget_bytes,
                "used_bytes": cache.used_bytes,
                "epc_pages_allocated": fast.host._enclave.epc.allocated_pages,
                **cache.stats.snapshot(),
            },
        }
    return measured


@pytest.fixture(scope="module")
def conjunctive_runs():
    """3-filter conjunctive query, batched vs one-ecall-per-filter."""
    rows = 200
    columns = {
        "a": [i % 50 for i in range(rows)],
        "b": [f"w{i % 40:03d}" for i in range(rows)],
        "c": [i % 30 for i in range(rows)],
    }
    sql = (
        "SELECT a FROM t WHERE a >= 10 AND b <= 'w020' AND c >= 5 ORDER BY a"
    )
    measured = {}
    for label, fastpath in (
        ("baseline", FastPathConfig.disabled()),
        ("fast", FastPathConfig()),
    ):
        system = EncDBDBSystem.create(seed=2026, fastpath=fastpath)
        system.execute(
            "CREATE TABLE t (a ED1 INTEGER, b ED2 VARCHAR(8), c ED3 INTEGER)"
        )
        system.bulk_load("t", columns)
        cost = system.server.cost_model
        before = cost.snapshot()
        start = time.perf_counter()
        result = system.query(sql)
        wall = time.perf_counter() - start
        delta = cost.diff(before)
        measured[label] = {
            "wall_s": wall,
            "cost_delta": delta,
            "batch_ecalls": cost.ecalls_by_name.get("dict_search_batch", 0),
            "rows": [r[0] for r in result],
        }
    assert measured["fast"]["rows"] == measured["baseline"]["rows"]
    return measured


# ----------------------------------------------------------------------
# Acceptance assertions
# ----------------------------------------------------------------------


def test_repeated_queries_meet_speedup_targets(shape, repeated_runs):
    """ED3 repeated queries: >=3x wall clock, >=5x fewer decryptions.

    The unsorted kind is where the entry cache matters most — the baseline
    decrypts the entire dictionary on every query. The first fast round is
    cold (it fills the cache), so the ratios below include that cost.
    """
    ed3 = repeated_runs["ED3"]
    assert ed3["speedup_wall"] >= 3.0, ed3["speedup_wall"]
    assert ed3["decryption_ratio"] >= 5.0, ed3["decryption_ratio"]
    # The cache also pays off on the logarithmic kinds, if less dramatically.
    for kind_name in KINDS:
        assert repeated_runs[kind_name]["decryption_ratio"] >= 5.0, kind_name


def test_cache_never_exceeds_epc_budget(shape, repeated_runs):
    """The cache honours its EPC charge: usage and peak stay in budget."""
    for kind_name, run in repeated_runs.items():
        cache = run["cache"]
        assert cache["used_bytes"] <= cache["budget_bytes"], kind_name
        assert cache["peak_bytes"] <= cache["budget_bytes"], kind_name
        assert cache["epc_pages_allocated"] > 0, kind_name


def test_three_filter_conjunction_is_one_batch_ecall(shape, conjunctive_runs):
    """Batching: 3 encrypted filters -> exactly 1 dict_search_batch ecall."""
    fast = conjunctive_runs["fast"]
    assert fast["cost_delta"]["ecalls"] == 1
    assert fast["batch_ecalls"] == 1
    baseline = conjunctive_runs["baseline"]
    assert baseline["cost_delta"]["ecalls"] == 3
    assert baseline["batch_ecalls"] == 0


# ----------------------------------------------------------------------
# Timing visibility + report
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind_name", KINDS)
def test_benchmark_repeated_queries_fast(benchmark, kind_name):
    """pytest-benchmark timing of one warm fast-path round."""
    _, fast, queries = _engines(kind_name)
    for query in queries:  # warm the cache once
        fast.run(query)
    benchmark.pedantic(
        lambda: [fast.run(query) for query in queries], rounds=3, iterations=1
    )


def test_report_fastpath(shape, repeated_runs, conjunctive_runs):
    rows = []
    for kind_name in KINDS:
        run = repeated_runs[kind_name]
        rows.append(
            (
                kind_name,
                f"{run['baseline']['wall_s'] * 1e3:.1f}",
                f"{run['fast']['wall_s'] * 1e3:.1f}",
                f"{run['speedup_wall']:.2f}x",
                run["baseline"]["cost_delta"]["decryptions"],
                run["fast"]["cost_delta"]["decryptions"],
                f"{run['decryption_ratio']:.1f}x",
            )
        )
    text = format_table(
        "Query fast path: repeated range queries "
        f"({ROWS} rows, |D|={DISTINCT}, {NUM_QUERIES} queries x {ROUNDS} "
        "rounds), baseline vs cached/batched/parallel fast path",
        ["kind", "base ms", "fast ms", "speedup", "base decrypts",
         "fast decrypts", "ratio"],
        rows,
    )
    batch = conjunctive_runs
    text += (
        "\n3-filter conjunctive query: "
        f"{batch['baseline']['cost_delta']['ecalls']} ecalls baseline vs "
        f"{batch['fast']['cost_delta']['ecalls']} (one dict_search_batch) "
        "with the fast path.\n"
    )
    write_result("fastpath", text)

    payload = {
        "workload": {
            "rows": ROWS,
            "distinct_values": DISTINCT,
            "range_size": RANGE_SIZE,
            "queries": NUM_QUERIES,
            "rounds": ROUNDS,
        },
        "repeated_queries": repeated_runs,
        "conjunctive_query": {
            label: {k: v for k, v in run.items() if k != "rows"}
            for label, run in conjunctive_runs.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fastpath.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert len(rows) == len(KINDS)

"""Table 1: EncDBDB's row in the TEE-database comparison.

The paper compares EnclaveDB, ObliDB, StealthDB, and EncDBDB on workload,
protection object, compression, storage/performance overhead, and enclave
LOC. The other systems' numbers are quoted from the paper; this benchmark
*measures* the reproduction's own row:

- **storage overhead** of the best compressed encrypted dictionary (ED1-3)
  vs the plaintext file — the paper reports < 100% (negative on C2);
- **performance overhead** of EncDBDB vs PlainDBDB (paper: ~8.9%);
- **enclave LOC** of the reproduction's trusted computing base (paper:
  1129 C LOC).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from conftest import write_result
from fig8_common import measure_cell
from repro.bench.report import format_table
from repro.bench.storage import plaintext_file_bytes, storage_table_for_column
from repro.columnstore.types import VarcharType

#: The reproduction's trusted computing base (DESIGN.md §10): everything
#: that executes inside the simulated enclave.
TCB_FILES = (
    "encdict/enclave_app.py",
    "encdict/search.py",
    "encdict/kernels.py",  # vectorized in-enclave search kernels (PR 6)
    "encdict/encode.py",
    "encdict/builder.py",  # rebuild_for_merge runs EncDB inside the enclave
    "encdict/buckets.py",
    "crypto/pae.py",
    "crypto/gcm.py",
    "crypto/aes.py",
    "crypto/kdf.py",
)


def count_tcb_loc() -> dict[str, int]:
    """Non-blank, non-comment lines of the trusted modules."""
    package_root = Path(__import__("repro").__file__).parent
    counts = {}
    for relative in TCB_FILES:
        lines = (package_root / relative).read_text().splitlines()
        code_lines = 0
        in_docstring = False
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            quote_count = stripped.count('"""') + stripped.count("'''")
            if in_docstring:
                if quote_count % 2 == 1:
                    in_docstring = False
                continue
            if quote_count == 1 and (
                stripped.startswith('"""') or stripped.startswith("'''")
            ):
                in_docstring = True
                continue
            if quote_count == 2 and (
                stripped.startswith('"""') or stripped.startswith("'''")
            ):
                continue  # one-line docstring
            code_lines += 1
        counts[relative] = code_lines
    return counts


@pytest.fixture(scope="module")
def encdbdb_row(workbench):
    values = workbench.column("C2")
    storage = storage_table_for_column(
        values, string_length=workbench.spec("C2").string_length,
        bsmax_values=(10,),
    )
    plaintext = plaintext_file_bytes(
        values, VarcharType(workbench.spec("C2").string_length)
    )
    storage_overhead = storage["ED1/ED2/ED3"] / plaintext - 1.0

    stats = measure_cell(workbench, "ED1", "C2", 100)
    perf_overhead = stats["EncDBDB"].mean / stats["PlainDBDB"].mean - 1.0

    loc = count_tcb_loc()
    return storage_overhead, perf_overhead, loc


def test_report_table1(benchmark, encdbdb_row):
    storage_overhead, perf_overhead, loc = encdbdb_row
    published = [
        ("EnclaveDB [71]", "OLTP", "storage+query engine", "no", "N/A",
         "> 20 %", "~235,000"),
        ("ObliDB [31]", "OLTP & OLAP", "array or B+-tree", "no", "> 100 %",
         "> 200 %", "~10,000"),
        ("StealthDB [39]", "OLTP", "primitive operators", "no", "> 300 %",
         "> 20 %", "~1,500"),
        ("EncDBDB (paper)", "OLAP", "dictionaries", "yes", "< 100 %",
         "~8.9 %", "1,129"),
        (
            "EncDBDB (this repro)",
            "OLAP",
            "dictionaries",
            "yes",
            f"{storage_overhead * 100:+.1f} %",
            f"{perf_overhead * 100:+.1f} %",
            f"{sum(loc.values()):,} (Python)",
        ),
    ]
    text = format_table(
        "Table 1: TEE-database comparison (first four rows quoted from the "
        "paper; last row measured by this reproduction on C2)",
        ["approach", "workload", "protection object", "compression",
         "storage ovh", "perf ovh", "enclave LOC"],
        published,
    )
    text += "\n\nTrusted-computing-base LOC breakdown:\n" + "\n".join(
        f"  {name:28s} {count:5d}" for name, count in encdbdb_row[2].items()
    )
    write_result("table1_comparison", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(published) == 5


def test_storage_overhead_below_100_percent(shape, encdbdb_row):
    """ED1-3 on the compressible column beats even the plaintext file."""
    storage_overhead, _, _ = encdbdb_row
    assert storage_overhead < 1.0
    assert storage_overhead < 0.0  # C2 compresses below plaintext size


def test_performance_overhead_moderate(shape, encdbdb_row):
    """EncDBDB vs PlainDBDB: same order of magnitude (paper: 8.9%).

    Pure-Python decryption costs more per call than AES-NI, so the
    tolerance is generous; the claim preserved is 'encryption does not
    change the complexity class'.
    """
    _, perf_overhead, _ = encdbdb_row
    assert perf_overhead < 4.0


def test_enclave_tcb_is_small(shape, encdbdb_row):
    """The trusted code stays in the low thousands of lines — the paper's
    small-TCB argument (1,129 C LOC; this reproduction implements AES/GCM
    from scratch inside the TCB, which the paper delegates to hardware)."""
    _, _, loc = encdbdb_row
    total = sum(loc.values())
    assert total < 2500, loc
    assert loc["encdict/search.py"] < 400

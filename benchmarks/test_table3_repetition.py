"""Table 3: frequency leakage and dictionary size per repetition option.

Measures |D| for all three repetition options on the C2 column (whose
duplication makes the differences visible) and checks the published
formulas: |un(C)| for revealing, ~ sum_v 2|oc(C,v)|/(1+bsmax) for
smoothing, |AV| for hiding — plus the frequency-leakage guarantees.
"""

from __future__ import annotations

from collections import Counter

import pytest

from conftest import write_result
from repro.bench.report import format_table
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.buckets import expected_bucket_count
from repro.encdict.builder import encdb_build
from repro.encdict.options import ED1, ED4, ED7
from repro.security.leakage import max_frequency

BSMAX = 10


@pytest.fixture(scope="module")
def builds(workbench):
    values = workbench.column("C2")
    value_type = VarcharType(workbench.spec("C2").string_length)
    rng = HmacDrbg(b"table3")
    pae = default_pae(rng=rng.fork("pae"))
    key = pae_gen(rng=rng.fork("key"))
    result = {}
    for label, kind, bsmax in (
        ("frequency revealing", ED1, 1),
        ("frequency smoothing", ED4, BSMAX),
        ("frequency hiding", ED7, 1),
    ):
        result[label] = encdb_build(
            values, kind, value_type=value_type, key=key, pae=pae,
            rng=rng.fork(label), bsmax=bsmax,
        )
    return values, result


def test_benchmark_build_per_repetition_option(benchmark, workbench):
    """Benchmark: EncDB build cost of the most expensive option (hiding)."""
    values = workbench.column("C2")[:5000]
    value_type = VarcharType(workbench.spec("C2").string_length)
    rng = HmacDrbg(b"bench-build")
    pae = default_pae(rng=rng.fork("pae"))
    key = pae_gen(rng=rng.fork("key"))

    def build():
        return encdb_build(
            values, ED7, value_type=value_type, key=key, pae=pae,
            rng=rng.fork("b"), bsmax=1,
        )

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    assert result.stats.dictionary_entries == len(values)


def test_report_table3(benchmark, builds, workbench):
    values, result = builds
    rows = []
    for label, build in result.items():
        rows.append(
            (
                label,
                build.stats.kind.repetition.frequency_leakage,
                build.stats.dictionary_entries,
                max_frequency(build.attribute_vector),
            )
        )
    text = format_table(
        f"Table 3: repetition options on C2 ({len(values)} rows, "
        f"{len(set(values))} uniques, bsmax={BSMAX} for smoothing)",
        ["repetition option", "freq. leakage", "|D|", "max ValueID freq"],
        rows,
    )
    write_result("table3_repetition", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 3


def test_revealing_size_is_unique_count(shape, builds):
    values, result = builds
    assert result["frequency revealing"].stats.dictionary_entries == len(set(values))


def test_hiding_size_is_column_length(shape, builds):
    values, result = builds
    assert result["frequency hiding"].stats.dictionary_entries == len(values)


def test_smoothing_size_matches_formula(shape, builds):
    """|D| ~ sum_v 2*|oc(C,v)|/(1+bsmax) (Table 3), within sampling noise."""
    values, result = builds
    expected = sum(
        expected_bucket_count(count, BSMAX)
        for count in Counter(values).values()
    )
    measured = result["frequency smoothing"].stats.dictionary_entries
    assert measured == pytest.approx(expected, rel=0.25)


def test_frequency_bounds(shape, builds):
    values, result = builds
    assert max_frequency(result["frequency revealing"].attribute_vector) == max(
        Counter(values).values()
    )
    assert max_frequency(result["frequency smoothing"].attribute_vector) <= BSMAX
    assert max_frequency(result["frequency hiding"].attribute_vector) == 1


def test_sizes_strictly_ordered(shape, builds):
    values, result = builds
    assert (
        result["frequency revealing"].stats.dictionary_entries
        < result["frequency smoothing"].stats.dictionary_entries
        < result["frequency hiding"].stats.dictionary_entries
    )

"""Figure 8b: latencies of the frequency-smoothing kinds ED4-ED6 (bsmax=10).

Shape expectations from the paper:

1. ED4/ED5 cost barely more than ED1/ED2 — the smoothing duplicates grow
   |D|, but binary searches only slow logarithmically (paper: +0.002 ms and
   +0.11 ms average).
2. ED6 degrades sharply: the linear dictionary scan covers a larger |D| and
   returns more ValueIDs, and each of them multiplies the attribute-vector
   scan (paper: seconds at full scale for RS=100).
"""

from __future__ import annotations

import pytest

from conftest import FIG8_BSMAX, write_result
from fig8_common import measure_cell, render_figure


@pytest.fixture(scope="module")
def cells(workbench):
    measured = {}
    for kind_name in ("ED4", "ED5", "ED6"):
        for column_name in ("C1", "C2"):
            for range_size in (2, 100):
                measured[(kind_name, column_name, range_size)] = measure_cell(
                    workbench, kind_name, column_name, range_size, bsmax=FIG8_BSMAX
                )
    return measured


@pytest.fixture(scope="module")
def reference_cells(workbench):
    """ED1/ED2/ED3 counterparts for the overhead comparisons."""
    measured = {}
    for kind_name in ("ED1", "ED2", "ED3"):
        for column_name in ("C1", "C2"):
            measured[(kind_name, column_name)] = measure_cell(
                workbench, kind_name, column_name, 100
            )
    return measured


@pytest.mark.parametrize("kind_name", ["ED4", "ED5", "ED6"])
def test_benchmark_encdbdb_query(benchmark, workbench, kind_name):
    engine = workbench.engine("EncDBDB", "C2", kind_name, bsmax=FIG8_BSMAX)
    query = workbench.queries("C2", 100)[0]
    benchmark.pedantic(lambda: engine.run(query), rounds=3, iterations=1)


def test_report_figure8b(benchmark, cells, workbench):
    text = render_figure(
        f"Figure 8b (ED4-ED6, bsmax={FIG8_BSMAX}): mean latency of "
        f"{workbench.settings.queries} random range queries over "
        f"{workbench.settings.rows} rows",
        cells,
    )
    write_result("figure8b_ed4_ed6", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(cells) == 12


def test_smoothing_overhead_tiny_for_binary_search_kinds(
    shape, cells, reference_cells
):
    """ED4 vs ED1 and ED5 vs ED2: logarithmic slowdown only."""
    for smoothing_kind, revealing_kind in (("ED4", "ED1"), ("ED5", "ED2")):
        for column_name in ("C1", "C2"):
            smoothing = cells[(smoothing_kind, column_name, 100)]["EncDBDB"].mean
            revealing = reference_cells[(revealing_kind, column_name)]["EncDBDB"].mean
            assert smoothing < 2.5 * revealing + 2e-3, (smoothing_kind, column_name)


def test_ed6_slower_than_ed3(shape, cells, reference_cells):
    """Smoothing severely impacts the linear-scan kind (paper §6.3).

    The degradation is driven by the duplicates smoothing adds, so it is
    pronounced on the low-cardinality C2 (many occurrences per value) and
    disappears into noise on C1, whose values are already nearly unique
    (|D| barely grows). The strict ordering is asserted where the effect
    exists; C1 only checks ED6 does not get mysteriously faster.
    """
    ed6_c2 = cells[("ED6", "C2", 100)]["EncDBDB"].mean
    ed3_c2 = reference_cells[("ED3", "C2")]["EncDBDB"].mean
    assert ed6_c2 > 2 * ed3_c2
    ed6_c1 = cells[("ED6", "C1", 100)]["EncDBDB"].mean
    ed3_c1 = reference_cells[("ED3", "C1")]["EncDBDB"].mean
    assert ed6_c1 > 0.8 * ed3_c1


def test_ed6_is_the_slowest_smoothing_kind(shape, cells):
    for column_name in ("C1", "C2"):
        for range_size in (2, 100):
            ed4 = cells[("ED4", column_name, range_size)]["EncDBDB"].mean
            ed5 = cells[("ED5", column_name, range_size)]["EncDBDB"].mean
            ed6 = cells[("ED6", column_name, range_size)]["EncDBDB"].mean
            assert ed6 > ed4
            assert ed6 > ed5


def test_dictionary_grew_from_smoothing(shape, workbench):
    """|D| for ED4 exceeds |un(C)| but stays below |AV| (Table 3)."""
    engine = workbench.engine("EncDBDB", "C2", "ED4", bsmax=FIG8_BSMAX)
    unique_count = len(set(workbench.column("C2")))
    entries = len(engine.build.dictionary)
    assert unique_count < entries < len(engine.build.attribute_vector)

"""Table 6: storage size of various variants for columns C1 and C2.

Regenerates every row of the paper's storage table — plaintext file,
encrypted file, MonetDB, ED1-3, ED4-6 at bsmax 100/10/2, ED7-9 — for the
synthetic C1/C2 columns, and checks the orderings the paper reports:

- sizes grow monotonically from ED1-3 through decreasing bsmax to ED7-9;
- fewer unique values (C2) shrink every EncDBDB variant;
- on C2, ED1-3 undercuts the *plaintext* file (compression beats the
  encryption overhead — the paper's headline storage result).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.report import format_bytes, format_table
from repro.bench.storage import storage_table_for_column


@pytest.fixture(scope="module")
def tables(workbench):
    result = {}
    for column_name in ("C1", "C2"):
        values = workbench.column(column_name)
        result[column_name] = storage_table_for_column(
            values,
            string_length=workbench.spec(column_name).string_length,
            seed=f"storage-{column_name}".encode(),
        )
    return result


def test_benchmark_storage_accounting(benchmark, workbench):
    """Benchmark: measuring one full storage table for C2."""
    values = workbench.column("C2")

    def build_table():
        return storage_table_for_column(
            values, string_length=workbench.spec("C2").string_length
        )

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert table["ED7/ED8/ED9"] > table["ED1/ED2/ED3"]


def test_report_table6(benchmark, tables, workbench):
    rows = []
    variants = list(tables["C1"].keys())
    for variant in variants:
        rows.append(
            (
                variant,
                format_bytes(tables["C1"][variant]),
                format_bytes(tables["C2"][variant]),
            )
        )
    text = format_table(
        f"Table 6: storage size (synthetic C1/C2 at {workbench.settings.rows} rows; "
        "paper ran 10.9M)",
        ["variant", "size C1", "size C2"],
        rows,
    )
    write_result("table6_storage", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 8


def test_encdbdb_sizes_monotone_in_bsmax(shape, tables):
    """Smaller bsmax -> more duplicates -> more storage (paper §6.2)."""
    for column_name in ("C1", "C2"):
        table = tables[column_name]
        assert table["ED1/ED2/ED3"] <= table["ED4/ED5/ED6, bsmax=100"]
        assert (
            table["ED4/ED5/ED6, bsmax=100"]
            < table["ED4/ED5/ED6, bsmax=10"]
            < table["ED4/ED5/ED6, bsmax=2"]
            < table["ED7/ED8/ED9"]
        )


def test_fewer_uniques_need_less_space(shape, tables):
    """C2 (13k uniques at full scale) compresses better than C1."""
    assert tables["C2"]["ED1/ED2/ED3"] < tables["C1"]["ED1/ED2/ED3"]


def test_compressed_encrypted_beats_plaintext_on_c2(shape, tables):
    """The paper's headline: ED1-3 on C2 is smaller than the plaintext file."""
    assert tables["C2"]["ED1/ED2/ED3"] < tables["C2"]["Plaintext file"]


def test_encrypted_file_is_largest_naive_variant(shape, tables):
    for column_name in ("C1", "C2"):
        table = tables[column_name]
        assert table["Encrypted file"] > table["Plaintext file"]
        assert table["Encrypted file"] > table["MonetDB"]


def test_hiding_close_to_encrypted_file(shape, tables):
    """ED7-9 stores one PAE blob per row (plus head/AV overhead): it must be
    the same order of magnitude as the encrypted file."""
    for column_name in ("C1", "C2"):
        table = tables[column_name]
        ratio = table["ED7/ED8/ED9"] / table["Encrypted file"]
        assert 0.9 < ratio < 1.6

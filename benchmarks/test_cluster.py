"""Cluster throughput scaling under concurrent load (PR 7).

Drives 64 concurrent simulated clients against live 1-, 2- and 3-shard
topologies of real TCP servers and emits machine-readable
``results/BENCH_cluster.json`` (uploaded by the ``cluster-bench`` CI job).

The scaling lever is aggregate **enclave memory**, not host cores: each
shard's enclave gets a dictionary-entry cache (PR 1) far smaller than the
table's total decrypted dictionary. A single shard holding every partition
thrashes the cache — each range query re-decrypts evicted partitions inside
the enclave — while three shards hold a third of the partitions each, fit
their spans in cache, and serve mostly cache-warm searches. That is the
paper's DBaaS story at cluster scale: EPC is the scarce resource, and
sharding multiplies it.

Acceptance: >=1.5x query throughput from 1 shard to 3 shards at 64
concurrent clients, with p50/p99 latencies recorded per topology.

Scale knobs: ``ENCDBDB_CLUSTER_BENCH_ROWS`` (default 12,000),
``ENCDBDB_CLUSTER_BENCH_CLIENTS`` (default 64).
"""

from __future__ import annotations

import contextlib
import json
import os

import pytest

from conftest import RESULTS_DIR, write_result
from repro.bench.report import format_table
from repro.cluster import ClusterSystem, LoadGenerator, ShardMap
from repro.net import NetServer, RetryPolicy, ServerThread
from repro.server.dbms import EncDBDBServer
from repro.sgx.cache import FastPathConfig

ROWS = int(os.environ.get("ENCDBDB_CLUSTER_BENCH_ROWS", 12_000))
CLIENTS = int(os.environ.get("ENCDBDB_CLUSTER_BENCH_CLIENTS", 64))
REQUESTS_PER_CLIENT = 2
PARTITION_ROWS = max(1, ROWS // 15)  # 15 partitions over up to 3 shards
#: Per-shard enclave cache budget: sized so one shard cannot hold the whole
#: table's decrypted dictionaries but a 3-shard span fits comfortably.
CACHE_BYTES = 48 * 1024
TOPOLOGIES = (1, 2, 3)
SCALING_FLOOR = 1.5

#: 997 distinct values keep per-partition dictionaries large relative to
#: CACHE_BYTES; the multiplicative stride spreads them over every partition.
VALUES = [(i * 7919) % 997 for i in range(ROWS)]
QUERIES = [(q * 37 % 900, q * 37 % 900 + 40) for q in range(32)]


@contextlib.contextmanager
def _topology(shards: int):
    handles = []
    try:
        endpoints = []
        for shard_id in range(shards):
            fastpath = FastPathConfig(dictionary_cache_bytes=CACHE_BYTES)
            handle = ServerThread(
                NetServer(
                    EncDBDBServer(fastpath=fastpath),
                    max_sessions=32,
                    shard=shard_id,
                )
            )
            handle.__enter__()
            handles.append(handle)
            endpoints.append([("127.0.0.1", handle.port)])
        yield ShardMap.of_endpoints(endpoints)
    finally:
        for handle in reversed(handles):
            handle.__exit__(None, None, None)


def _run_topology(shards: int) -> dict:
    with _topology(shards) as shard_map:
        with ClusterSystem.connect(
            shard_map,
            seed=13,
            retry=RetryPolicy(attempts=5, base_delay=0.02, max_delay=0.25),
        ) as cluster:
            cluster.execute("CREATE TABLE bench (v ED3 INTEGER)")
            cluster.bulk_load(
                "bench", {"v": VALUES}, partition_rows=PARTITION_ROWS
            )
            expected = {
                (lo, hi): sum(1 for v in VALUES if lo <= v <= hi)
                for lo, hi in QUERIES
            }

            def issue(client_id: int, seq: int):
                lo, hi = QUERIES[(client_id * 7 + seq) % len(QUERIES)]
                result = cluster.query(
                    f"SELECT v FROM bench WHERE v BETWEEN {lo} AND {hi}"
                )
                return (lo, hi), len(result.column("v"))

            def check(client_id: int, seq: int, response) -> None:
                bounds, count = response
                if count != expected[bounds]:
                    raise AssertionError(
                        f"{bounds}: {count} rows, expected {expected[bounds]}"
                    )

            for lo, hi in QUERIES[:4]:  # connection + cache warmup
                cluster.query(f"SELECT v FROM bench WHERE v BETWEEN {lo} AND {hi}")
            stats = LoadGenerator(
                issue,
                clients=CLIENTS,
                requests_per_client=REQUESTS_PER_CLIENT,
                check=check,
            ).run()
    summary = stats.as_dict()
    summary["shards"] = shards
    summary["partitions_per_shard"] = -(-15 // shards)
    return summary


@pytest.fixture(scope="module")
def scaling_runs():
    return {shards: _run_topology(shards) for shards in TOPOLOGIES}


@pytest.fixture(scope="module", autouse=True)
def emit_results(scaling_runs):
    """Write BENCH_cluster.json + the human-readable scaling table."""
    baseline = scaling_runs[1]["throughput_qps"]
    payload = {
        "rows": ROWS,
        "partition_rows": PARTITION_ROWS,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "dictionary_cache_bytes": CACHE_BYTES,
        "scaling_floor": SCALING_FLOOR,
        "topologies": [scaling_runs[shards] for shards in TOPOLOGIES],
        "scaling_1_to_3": round(
            scaling_runs[3]["throughput_qps"] / baseline, 3
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cluster.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    rows = [
        [
            str(shards),
            f"{scaling_runs[shards]['throughput_qps']:.1f}",
            f"{scaling_runs[shards]['p50_ms']:.1f}",
            f"{scaling_runs[shards]['p99_ms']:.1f}",
            f"{scaling_runs[shards]['throughput_qps'] / baseline:.2f}x",
        ]
        for shards in TOPOLOGIES
    ]
    write_result(
        "cluster_scaling",
        f"Cluster throughput scaling — {CLIENTS} concurrent clients, "
        f"{ROWS} rows, {CACHE_BYTES // 1024} KiB enclave cache per shard\n\n"
        + format_table(
            "throughput by topology",
            ["shards", "qps", "p50 ms", "p99 ms", "vs 1 shard"],
            rows,
        ),
    )
    return payload


def test_every_topology_completes_error_free(shape, scaling_runs):
    for shards, run in scaling_runs.items():
        assert run["errors"] == 0, (shards, run["first_error"])
        assert run["completed"] == CLIENTS * REQUESTS_PER_CLIENT, shards


def test_latency_percentiles_are_recorded(shape, scaling_runs):
    for run in scaling_runs.values():
        assert 0 < run["p50_ms"] <= run["p99_ms"]


def test_throughput_scales_with_shard_count(shape, scaling_runs, emit_results):
    ratio = emit_results["scaling_1_to_3"]
    assert ratio >= SCALING_FLOOR, (
        f"1->3 shard throughput scaling {ratio:.2f}x below the "
        f"{SCALING_FLOOR}x floor: {emit_results}"
    )

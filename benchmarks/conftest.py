"""Shared fixtures for the benchmark suite.

Scale knobs (env vars, see :class:`repro.bench.harness.BenchSettings`):
``ENCDBDB_BENCH_ROWS`` (default 20 000; paper full scale: 10 900 000),
``ENCDBDB_BENCH_QUERIES`` (default 25; paper: 500), ``ENCDBDB_BENCH_SIZES``.

Every report benchmark writes its regenerated table/figure to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can quote the measured
numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.engines import (
    EncDbdbColumnEngine,
    MonetDbColumnEngine,
    PlainDbdbColumnEngine,
)
from repro.bench.harness import BenchSettings
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.encdict.options import kind_by_name
from repro.workloads.generator import C1_SPEC, C2_SPEC, generate_bw_column
from repro.workloads.queries import random_range_queries

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: bsmax used by the Figure 8b experiments ("bsmax = 10 in our experiments").
FIG8_BSMAX = 10


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings.from_env()


class ColumnWorkbench:
    """Lazily generated columns, engines, and query workloads (cached)."""

    def __init__(self, settings: BenchSettings) -> None:
        self.settings = settings
        self._columns: dict[tuple[str, int], list[str]] = {}
        self._engines: dict[tuple, object] = {}
        self._queries: dict[tuple[str, int, int], list] = {}

    def spec(self, name: str):
        return {"C1": C1_SPEC, "C2": C2_SPEC}[name]

    def column(self, name: str, rows: int | None = None) -> list[str]:
        rows = rows if rows is not None else self.settings.rows
        key = (name, rows)
        if key not in self._columns:
            self._columns[key] = generate_bw_column(
                self.spec(name), rows, HmacDrbg(f"bench-{name}-{rows}")
            )
        return self._columns[key]

    def queries(self, name: str, range_size: int, rows: int | None = None):
        rows = rows if rows is not None else self.settings.rows
        key = (name, range_size, rows)
        if key not in self._queries:
            self._queries[key] = random_range_queries(
                self.column(name, rows),
                range_size,
                self.settings.queries,
                HmacDrbg(f"queries-{name}-{range_size}-{rows}"),
            )
        return self._queries[key]

    def engine(
        self,
        engine_name: str,
        column_name: str,
        kind_name: str | None = None,
        *,
        bsmax: int = FIG8_BSMAX,
        rows: int | None = None,
    ):
        rows = rows if rows is not None else self.settings.rows
        key = (engine_name, column_name, kind_name, bsmax, rows)
        if key not in self._engines:
            values = self.column(column_name, rows)
            value_type = VarcharType(self.spec(column_name).string_length)
            seed = HmacDrbg(f"engine-{key}")
            if engine_name == "MonetDB":
                engine = MonetDbColumnEngine(values)
            elif engine_name == "PlainDBDB":
                engine = PlainDbdbColumnEngine(
                    values, kind_by_name(kind_name), value_type=value_type,
                    bsmax=bsmax, rng=seed,
                )
            elif engine_name == "EncDBDB":
                engine = EncDbdbColumnEngine(
                    values, kind_by_name(kind_name), value_type=value_type,
                    bsmax=bsmax, rng=seed,
                )
            else:
                raise ValueError(engine_name)
            self._engines[key] = engine
        return self._engines[key]


@pytest.fixture(scope="session")
def workbench(settings: BenchSettings) -> ColumnWorkbench:
    return ColumnWorkbench(settings)


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def result_writer():
    """Fixture handing tests the result-file writer."""
    return write_result


@pytest.fixture
def shape(benchmark):
    """Make a shape-assertion test run under ``--benchmark-only``.

    pytest-benchmark skips tests that never use the ``benchmark`` fixture
    in that mode; the tables/figures regenerated here are validated by
    assertion tests that must run alongside the timing tests, so they
    register a no-op timing round.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    return benchmark

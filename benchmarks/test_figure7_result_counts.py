"""Figure 7: average number of results of random range queries.

The paper plots, for C1 and C2 and RS in {2, 100}, the average number of
rows returned by 500 random range queries across dataset sizes. The shape to
reproduce: result counts grow with the dataset, RS=100 returns more than
RS=2, and C2 (few uniques, many repetitions) returns orders of magnitude
more rows than C1 — e.g. the paper's 65 067 average rows for full-scale C2
at RS=100.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.harness import latency_stats
from repro.bench.report import format_table
from repro.workloads.datasets import dataset_sizes
from repro.workloads.queries import expected_result_rows


def _average_results(workbench, column_name: str, range_size: int, rows: int) -> float:
    values = workbench.column(column_name, rows)
    queries = workbench.queries(column_name, range_size, rows)
    sizes = [expected_result_rows(values, query) for query in queries]
    return sum(sizes) / len(sizes)


@pytest.fixture(scope="module")
def figure7(workbench):
    sizes = dataset_sizes(
        workbench.settings.rows, steps=workbench.settings.size_steps,
        minimum=max(1000, workbench.settings.rows // 10),
    )
    data = {}
    for column_name in ("C1", "C2"):
        for range_size in (2, 100):
            for rows in sizes:
                data[(column_name, range_size, rows)] = _average_results(
                    workbench, column_name, range_size, rows
                )
    return sizes, data


def test_benchmark_result_counting(benchmark, workbench):
    values = workbench.column("C2")
    queries = workbench.queries("C2", 100)

    def count_all():
        return [expected_result_rows(values, query) for query in queries]

    sizes = benchmark.pedantic(count_all, rounds=1, iterations=1)
    assert all(size >= 100 for size in sizes)


def test_report_figure7(benchmark, figure7, workbench):
    sizes, data = figure7
    rows = []
    for column_name in ("C1", "C2"):
        for range_size in (2, 100):
            for dataset_rows in sizes:
                rows.append(
                    (
                        column_name,
                        f"RS={range_size}",
                        dataset_rows,
                        f"{data[(column_name, range_size, dataset_rows)]:10.1f}",
                    )
                )
    text = format_table(
        f"Figure 7: avg #results of {workbench.settings.queries} random range "
        "queries (paper: 500)",
        ["column", "range size", "dataset rows", "avg results"],
        rows,
    )
    write_result("figure7_result_counts", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows


def test_rs100_returns_more_than_rs2(shape, figure7):
    sizes, data = figure7
    for column_name in ("C1", "C2"):
        for rows in sizes:
            assert data[(column_name, 100, rows)] > data[(column_name, 2, rows)]


def test_c2_returns_far_more_than_c1(shape, figure7):
    """C2's repetitions multiply the result count (paper: ~65k vs ~150)."""
    sizes, data = figure7
    largest = sizes[-1]
    assert data[("C2", 100, largest)] > 10 * data[("C1", 100, largest)]


def test_results_grow_with_dataset_size(shape, figure7):
    sizes, data = figure7
    if len(sizes) < 2:
        pytest.skip("single dataset size configured")
    assert data[("C2", 100, sizes[-1])] > data[("C2", 100, sizes[0])]


def test_results_at_least_rs_when_all_uniques_present(shape, figure7, workbench):
    sizes, data = figure7
    largest = sizes[-1]
    assert data[("C1", 2, largest)] >= 2
    assert data[("C2", 100, largest)] >= 100

"""Ablation: rotation-oblivious binary search (Algorithm 3) vs a naive one.

The paper motivates the ``ENCODE``/modular-shift search by noting that a
binary search that "simply considers rndOffset during the data access would
leak rndOffset in the first round" (§4.1). This ablation implements exactly
that naive rotation-aware search and demonstrates the difference:

- the naive search's *first data-dependent probe position* varies with the
  secret offset (an observer recovers rndOffset from one query);
- Algorithm 3's probe prefix is identical for every offset;
- both return the same results, at statistically indistinguishable cost.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.harness import measure_query_latency
from repro.bench.report import format_table
from repro.columnstore.types import VarcharType
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.options import ED2
from repro.encdict.search import DictionaryAccessor, OrdinalRange, search_rotated

from tests.encdict.conftest import EdHarness, reference_range_search

VALUES = [f"v{i:03d}" for i in range(16)] * 2


def _naive_rotation_aware_search(accessor, search, rnd_offset):
    """The rejected design: binary search in sorted space, probing physical
    position ``(mid + rndOffset) mod n`` — correct, but the first probe is
    ``(n//2 + rndOffset) mod n``, a direct function of the secret."""
    n = len(accessor)

    def sorted_ordinal(sorted_index):
        return accessor.ordinal((sorted_index + rnd_offset) % n)

    low, high = 0, n
    while low < high:
        mid = (low + high) // 2
        if sorted_ordinal(mid) < search.low:
            low = mid + 1
        else:
            high = mid
    first = low
    low, high = 0, n
    while low < high:
        mid = (low + high) // 2
        if sorted_ordinal(mid) <= search.high:
            low = mid + 1
        else:
            high = mid
    last = low - 1
    matches = [(index + rnd_offset) % n for index in range(first, last + 1)]
    return sorted(matches)


def _build_for_offset(harness, wanted_offset):
    for attempt in range(600):
        harness.rng = harness.rng.fork(f"naive-{attempt}")
        build = harness.build(VALUES, ED2)
        if build.stats.rnd_offset == wanted_offset:
            return build
    raise AssertionError(f"offset {wanted_offset} never drawn")


@pytest.fixture(scope="module")
def probe_traces():
    """First data-dependent probe per offset, for both search variants."""
    harness = EdHarness(seed=b"rotation-ablation")
    naive_first, oblivious_first = {}, {}
    n_unique = len(set(VALUES))
    vt = None
    for offset in range(n_unique):
        build = _build_for_offset(harness, offset)
        vt = build.dictionary.value_type
        search = OrdinalRange(vt.ordinal("v004"), vt.ordinal("v009"))

        accessor = DictionaryAccessor(build.dictionary, key=harness.key, pae=harness.pae)
        naive_result = _naive_rotation_aware_search(accessor, search, offset)
        naive_first[offset] = accessor.probes[0]

        accessor = DictionaryAccessor(build.dictionary, key=harness.key, pae=harness.pae)
        result = search_rotated(accessor, search)
        oblivious_first[offset] = tuple(accessor.probes[:3])

        oblivious_records = sorted(
            attr_vect_search(build.attribute_vector, result).tolist()
        )
        naive_records = sorted(
            index
            for index, vid in enumerate(build.attribute_vector.tolist())
            if vid in set(naive_result)
        )
        expected = reference_range_search(VALUES, "v004", "v009")
        assert oblivious_records == expected
        assert naive_records == expected
    return naive_first, oblivious_first


def test_report_ablation(benchmark, probe_traces):
    naive_first, oblivious_first = probe_traces
    rows = [
        (offset, naive_first[offset], str(oblivious_first[offset]))
        for offset in sorted(naive_first)
    ]
    text = format_table(
        "Ablation: first probe positions of the naive rotation-aware search "
        "vs Algorithm 3, per secret rndOffset",
        ["rndOffset", "naive first probe", "Algorithm 3 first probes"],
        rows,
    )
    write_result("ablation_rotation_search", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows


def test_naive_search_leaks_offset_in_first_probe(shape, probe_traces):
    naive_first, _ = probe_traces
    n = len(naive_first)
    # The naive first probe is (n//2 + offset) mod n: a bijection of the
    # secret — observing one probe recovers rndOffset exactly.
    assert len(set(naive_first.values())) == n
    for offset, probe in naive_first.items():
        assert probe == (n // 2 + offset) % n


def test_oblivious_search_hides_offset_in_probe_prefix(shape, probe_traces):
    _, oblivious_first = probe_traces
    assert len(set(oblivious_first.values())) == 1


def test_oblivious_costs_no_more_asymptotically(shape, workbench):
    """Algorithm 3 stays O(log |D|): its probe count tracks the naive one
    within a constant factor on a larger dictionary."""
    harness = EdHarness(seed=b"cost-compare")
    values = [f"x{i:04d}" for i in range(512)]
    build = harness.build(values, ED2)
    vt = build.dictionary.value_type
    search = OrdinalRange(vt.ordinal("x0100"), vt.ordinal("x0200"))
    accessor = DictionaryAccessor(build.dictionary, key=harness.key, pae=harness.pae)
    search_rotated(accessor, search)
    oblivious_probes = len(accessor.probes)

    accessor = DictionaryAccessor(build.dictionary, key=harness.key, pae=harness.pae)
    _naive_rotation_aware_search(accessor, search, build.stats.rnd_offset)
    naive_probes = len(accessor.probes)
    assert oblivious_probes <= 2 * naive_probes + 6

"""Ablation: pure-Python AES-GCM vs library AES-GCM inside EnclDictSearch.

The paper attributes part of its tiny encryption overhead to
hardware-supported AES-GCM (§6.3 observation 3). This ablation swaps the
PAE backend under the identical enclave search path and quantifies how much
of EncDBDB's latency is decryption cost: the from-scratch backend is the
auditable reference, the library backend the performance twin of AES-NI.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.engines import EncDbdbColumnEngine
from repro.bench.harness import measure_query_latency
from repro.bench.report import format_table
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.pae import LibraryPae, PurePythonPae
from repro.encdict.options import ED1, ED3


def _engine(workbench, pae_class, kind, rows=4000):
    values = workbench.column("C2", rows)
    rng = HmacDrbg(f"ablation-{pae_class.__name__}-{kind.name}")
    return EncDbdbColumnEngine(
        values,
        kind,
        value_type=VarcharType(workbench.spec("C2").string_length),
        rng=rng,
        pae=pae_class(rng=rng.fork("pae")),
    )


@pytest.fixture(scope="module")
def measurements(workbench):
    rows = 4000
    queries = workbench.queries("C2", 2, rows)[:10]
    stats = {}
    for pae_class in (LibraryPae, PurePythonPae):
        for kind in (ED1, ED3):
            engine = _engine(workbench, pae_class, kind, rows)
            stats[(pae_class.__name__, kind.name)] = measure_query_latency(
                engine.run, queries
            )
    return queries, stats


@pytest.mark.parametrize("backend", ["library", "pure"])
def test_benchmark_backend_on_linear_scan(benchmark, workbench, backend):
    """ED3's linear scan maximizes decryption count: the worst case."""
    pae_class = LibraryPae if backend == "library" else PurePythonPae
    engine = _engine(workbench, pae_class, ED3)
    query = workbench.queries("C2", 2, 4000)[0]
    benchmark.pedantic(lambda: engine.run(query), rounds=2, iterations=1)


def test_report_ablation(benchmark, measurements):
    queries, stats = measurements
    rows = [
        (backend, kind, f"{latency.mean_ms:10.3f}", f"{latency.ci95_ms:8.3f}")
        for (backend, kind), latency in sorted(stats.items())
    ]
    text = format_table(
        "Ablation: PAE backend inside EnclDictSearch (C2 sample, "
        f"{len(queries)} queries)",
        ["backend", "kind", "mean ms", "ci95 ms"],
        rows,
    )
    write_result("ablation_pae_backend", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 4


def test_backends_agree_on_results(shape, workbench):
    queries = workbench.queries("C2", 2, 4000)[:5]
    library_engine = _engine(workbench, LibraryPae, ED1)
    pure_engine = _engine(workbench, PurePythonPae, ED1)
    assert [library_engine.run(q) for q in queries] == [
        pure_engine.run(q) for q in queries
    ]


def test_pure_python_pays_most_on_linear_scan(shape, measurements):
    """The backend gap scales with decryption count: larger for ED3 than
    for ED1's logarithmic probe pattern."""
    _, stats = measurements
    ed1_gap = stats[("PurePythonPae", "ED1")].mean - stats[("LibraryPae", "ED1")].mean
    ed3_gap = stats[("PurePythonPae", "ED3")].mean - stats[("LibraryPae", "ED3")].mean
    assert ed3_gap > ed1_gap
    assert stats[("PurePythonPae", "ED3")].mean > stats[("LibraryPae", "ED3")].mean

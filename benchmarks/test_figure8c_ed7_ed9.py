"""Figure 8c: latencies of the frequency-hiding kinds ED7-ED9.

Shape expectations from the paper:

1. ED7/ED8 add only a small overhead over ED1/ED2 (paper: +0.01 ms and
   +0.23 ms average) — binary searches slow logarithmically even though
   |D| = |AV|.
2. ED9 is the most expensive kind of all: a linear scan over a dictionary
   as large as the column, plus an explicit ValueID list proportional to
   the result size in the attribute-vector search (paper: 5.43 s / 60.82 s
   for full-scale C1/C2 at RS=100).
3. For ED9 at RS=100, C2 is slower than C1 (more matching rows -> more
   returned ValueIDs -> a heavier O(|AV|*|vid|) scan), inverting the
   C1/C2 relation of the linear-scan revealing kind.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from fig8_common import measure_cell, render_figure


@pytest.fixture(scope="module")
def cells(workbench):
    measured = {}
    for kind_name in ("ED7", "ED8", "ED9"):
        for column_name in ("C1", "C2"):
            for range_size in (2, 100):
                measured[(kind_name, column_name, range_size)] = measure_cell(
                    workbench, kind_name, column_name, range_size
                )
    return measured


@pytest.fixture(scope="module")
def reference_cells(workbench):
    measured = {}
    for kind_name in ("ED1", "ED2"):
        for column_name in ("C1", "C2"):
            measured[(kind_name, column_name)] = measure_cell(
                workbench, kind_name, column_name, 100
            )
    return measured


@pytest.mark.parametrize("kind_name", ["ED7", "ED8", "ED9"])
def test_benchmark_encdbdb_query(benchmark, workbench, kind_name):
    engine = workbench.engine("EncDBDB", "C2", kind_name)
    query = workbench.queries("C2", 100)[0]
    benchmark.pedantic(lambda: engine.run(query), rounds=3, iterations=1)


def test_report_figure8c(benchmark, cells, workbench):
    text = render_figure(
        f"Figure 8c (ED7-ED9): mean latency of {workbench.settings.queries} "
        f"random range queries over {workbench.settings.rows} rows",
        cells,
    )
    write_result("figure8c_ed7_ed9", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(cells) == 12


def test_hiding_overhead_small_for_binary_search_kinds(shape, cells, reference_cells):
    for hiding_kind, revealing_kind in (("ED7", "ED1"), ("ED8", "ED2")):
        for column_name in ("C1", "C2"):
            hiding = cells[(hiding_kind, column_name, 100)]["EncDBDB"].mean
            revealing = reference_cells[(revealing_kind, column_name)]["EncDBDB"].mean
            assert hiding < 3 * revealing + 2e-3, (hiding_kind, column_name)


def test_ed9_is_slowest_of_all(shape, cells):
    for column_name in ("C1", "C2"):
        for range_size in (2, 100):
            ed7 = cells[("ED7", column_name, range_size)]["EncDBDB"].mean
            ed8 = cells[("ED8", column_name, range_size)]["EncDBDB"].mean
            ed9 = cells[("ED9", column_name, range_size)]["EncDBDB"].mean
            assert ed9 > 5 * ed7
            assert ed9 > 5 * ed8


def test_ed9_c2_slower_than_c1_at_rs100(shape, cells, workbench):
    """The paper's inversion: 60.82 s (C2) vs 5.43 s (C1) at full scale.

    The inversion is driven by the ``O(|AV| * |vid|)`` attribute-vector
    term: C2's repetitions make the ED9 linear scan return far more
    ValueIDs. At bench scale (|D| identical for both columns under
    frequency hiding, numpy's set-based scan) wall clock is noise-bound, so
    the mechanism is asserted on the deterministic operation counts, and
    wall clock only has to show no severe contradiction.
    """
    import numpy as np

    from repro.encdict.attrvect import attr_vect_search
    from repro.encdict.enclave_app import encrypt_search_range
    from repro.encdict.search import OrdinalRange
    from repro.sgx.costs import CostModel

    comparisons = {}
    for column_name in ("C1", "C2"):
        engine = workbench.engine("EncDBDB", column_name, "ED9")
        query = workbench.queries(column_name, 100)[0]
        tau = encrypt_search_range(
            engine._pae,
            engine._column_key,
            OrdinalRange(
                engine._value_type.ordinal(query.low),
                engine._value_type.ordinal(query.high),
            ),
        )
        result = engine.host.ecall("dict_search", engine.build.dictionary, tau)
        cost = CostModel()
        attr_vect_search(engine.build.attribute_vector, result, cost_model=cost)
        comparisons[column_name] = cost.comparisons
    assert comparisons["C2"] > 5 * comparisons["C1"]

    c1 = cells[("ED9", "C1", 100)]["EncDBDB"].mean
    c2 = cells[("ED9", "C2", 100)]["EncDBDB"].mean
    assert c2 > 0.5 * c1


def test_hiding_dictionary_is_column_sized(shape, workbench):
    """|D| = |AV| for frequency hiding (Table 3)."""
    engine = workbench.engine("EncDBDB", "C1", "ED7")
    assert len(engine.build.dictionary) == len(engine.build.attribute_vector)


def test_frequency_hiding_av_is_a_permutation(shape, workbench):
    """Every ValueID appears exactly once in AV (no frequency leakage)."""
    import numpy as np

    engine = workbench.engine("EncDBDB", "C1", "ED9")
    attribute_vector = engine.build.attribute_vector
    assert len(np.unique(attribute_vector)) == len(attribute_vector)

"""Table 5 / Figure 6: security classification of the encrypted dictionaries.

Regenerates the paper's security table empirically: for every ED, the
leakage labels, the comparable scheme from the literature, and the measured
accuracy of the two attack simulations (frequency analysis with auxiliary
data, order reconstruction). Asserts that the measured accuracies respect
the Figure 6 lattice: moving down a column or right along a row never makes
either attack stronger.
"""

from __future__ import annotations

from collections import Counter

import pytest

from conftest import write_result
from repro.bench.report import format_table
from repro.columnstore.types import VarcharType
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import derive_column_key
from repro.crypto.pae import default_pae, pae_gen
from repro.encdict.builder import encdb_build
from repro.encdict.options import ALL_KINDS
from repro.security.attacks import (
    frequency_analysis_attack,
    order_reconstruction_attack,
)
from repro.security.classify import leakage_profile, security_lattice_edges

BSMAX = 5


@pytest.fixture(scope="module")
def attack_results(workbench):
    """Attack accuracies for all nine kinds over the skewed C2 column."""
    values = workbench.column("C2")[:4000]
    value_type = VarcharType(workbench.spec("C2").string_length)
    rng = HmacDrbg(b"table5")
    pae = default_pae(rng=rng.fork("pae"))
    key = derive_column_key(pae_gen(rng=rng.fork("skdb")), "t", "c")
    results = {}
    for kind in ALL_KINDS:
        build = encdb_build(
            values, kind, value_type=value_type, key=key, pae=pae,
            rng=rng.fork(kind.name), bsmax=BSMAX,
        )
        ground_truth = [
            value_type.from_bytes(pae.decrypt(key, blob))
            for blob in build.dictionary.entries()
        ]
        frequency_accuracy = frequency_analysis_attack(
            build.attribute_vector, dict(Counter(values)), ground_truth
        )
        order_accuracy = order_reconstruction_attack(
            kind, build.attribute_vector, sorted(ground_truth), ground_truth
        )
        results[kind.name] = (kind, frequency_accuracy, order_accuracy)
    return results


def test_report_table5_figure6(benchmark, attack_results):
    rows = []
    for name, (kind, frequency_accuracy, order_accuracy) in attack_results.items():
        rows.append(
            (
                name,
                kind.repetition.frequency_leakage,
                kind.order.order_leakage,
                kind.comparable_security or "(relative only)",
                f"{frequency_accuracy:6.3f}",
                f"{order_accuracy:6.3f}",
            )
        )
    text = format_table(
        "Table 5 + Figure 6: leakage labels, comparable schemes, and measured "
        f"attack accuracies (bsmax={BSMAX} for ED4-ED6)",
        ["kind", "freq leak", "order leak", "comparable security",
         "freq-attack acc", "order-attack acc"],
        rows,
    )
    edges = sorted(security_lattice_edges())
    text += "\n\nFigure 6 lattice edges (weaker -> stronger):\n  " + ", ".join(
        f"{weak}<={strong}" for weak, strong in edges
    )
    write_result("table5_fig6_security", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 9


def test_frequency_attack_respects_repetition_grades(shape, attack_results):
    """Revealing >= smoothing >= hiding in frequency-attack accuracy."""
    for sorted_group in (("ED1", "ED4", "ED7"), ("ED2", "ED5", "ED8"),
                         ("ED3", "ED6", "ED9")):
        revealing, smoothing, hiding = (
            attack_results[name][1] for name in sorted_group
        )
        assert revealing >= smoothing - 0.02, sorted_group
        assert smoothing >= hiding - 0.02, sorted_group


def test_order_attack_respects_order_grades(shape, attack_results):
    """Sorted >= rotated >= unsorted in order-attack accuracy."""
    for row in (("ED1", "ED2", "ED3"), ("ED4", "ED5", "ED6"),
                ("ED7", "ED8", "ED9")):
        sorted_acc, rotated_acc, unsorted_acc = (
            attack_results[name][2] for name in row
        )
        # Rotated and unsorted both floor this attack near the random-guess
        # baseline; their expectations can differ by a hair either way, so
        # small-noise slack is allowed (the labels still differ: a rotated
        # dictionary leaks the cyclic order, which *other* attacks exploit).
        assert sorted_acc >= rotated_acc - 0.02, row
        assert rotated_acc >= unsorted_acc - 0.02, row


def test_lattice_edges_never_strengthen_attacks(shape, attack_results):
    """Along every Figure 6 edge both attacks get (weakly) harder."""
    for weaker_name, stronger_name in security_lattice_edges():
        _, weak_freq, weak_order = attack_results[weaker_name]
        _, strong_freq, strong_order = attack_results[stronger_name]
        assert strong_freq <= weak_freq + 0.02, (weaker_name, stronger_name)
        assert strong_order <= weak_order + 0.02, (weaker_name, stronger_name)


def test_extreme_kinds(shape, attack_results):
    """ED1 is fully crackable; ED9 resists both attacks."""
    _, ed1_freq, ed1_order = attack_results["ED1"]
    assert ed1_freq > 0.9
    assert ed1_order > 0.95
    _, ed9_freq, ed9_order = attack_results["ED9"]
    assert ed9_freq < 0.35
    assert ed9_order < 0.35


def test_profiles_match_labels(shape):
    for kind in ALL_KINDS:
        frequency_grade, order_grade = leakage_profile(kind)
        assert 0 <= frequency_grade <= 2
        assert 0 <= order_grade <= 2

"""Network round-trip overhead: TCP deployment vs in-process (repro.net).

Runs the same range-query workload twice per dictionary kind — once against
an in-process :class:`EncDBDBSystem`, once against a live ``repro.net`` TCP
server on localhost — and reports the wall-clock overhead the wire adds,
plus the measured frame bytes per query. Kinds cover the three search
complexities: ED1 (sorted, O(log|D|)), ED3 (unsorted, O(|D|)) and ED7
(frequency hiding, |D| = column length).

Emits human-readable ``results/net_roundtrip.txt`` and machine-readable
``results/BENCH_net.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import RESULTS_DIR, write_result
from repro.bench.report import format_table
from repro.client.session import EncDBDBSystem
from repro.crypto.drbg import HmacDrbg
from repro.net.client import connect_system
from repro.net.server import NetServer, ServerThread

KINDS = ("ED1", "ED3", "ED7")
ROWS = 4_000
DISTINCT = 500
NUM_QUERIES = 12
RANGE_WIDTH = 25
SEED = 2026


def _values() -> list[int]:
    rng = HmacDrbg(b"net-bench-values")
    return [rng.randint(0, DISTINCT - 1) for _ in range(ROWS)]


def _queries() -> list[tuple[int, int]]:
    rng = HmacDrbg(b"net-bench-queries")
    bounds = []
    for _ in range(NUM_QUERIES):
        low = rng.randint(0, DISTINCT - RANGE_WIDTH - 1)
        bounds.append((low, low + RANGE_WIDTH))
    return bounds


def _load(system, kind_name: str, values: list[int]) -> None:
    system.execute(f"CREATE TABLE t (v {kind_name} INTEGER)")
    system.bulk_load("t", {"v": values})


def _run_queries(system, bounds) -> tuple[float, list[int]]:
    """(wall_seconds, per-query match counts) for the fixed workload."""
    counts = []
    start = time.perf_counter()
    for low, high in bounds:
        result = system.query(
            f"SELECT COUNT(*) FROM t WHERE v >= {low} AND v < {high}"
        )
        counts.append(result.scalar())
    return time.perf_counter() - start, counts


class _ByteCounter:
    def __init__(self) -> None:
        self.total = 0
        self.frames = 0

    def __call__(self, direction, frame_type, payload: bytes) -> None:
        self.total += len(payload)
        self.frames += 1


@pytest.fixture(scope="module")
def roundtrip_runs():
    values = _values()
    bounds = _queries()
    measured = {}
    for kind_name in KINDS:
        local = EncDBDBSystem.create(seed=SEED)
        _load(local, kind_name, values)
        local_wall, local_counts = _run_queries(local, bounds)
        local_ecalls = local.server.cost_model.ecalls

        with ServerThread(NetServer()) as handle:
            counter = _ByteCounter()
            remote = connect_system(
                "127.0.0.1", handle.port, seed=SEED, tap=counter
            )
            try:
                _load(remote, kind_name, values)
                loaded_bytes, loaded_frames = counter.total, counter.frames
                remote_wall, remote_counts = _run_queries(remote, bounds)
            finally:
                remote.close()
            remote_ecalls = handle.server.dbms.cost_model.ecalls

        assert remote_counts == local_counts, kind_name  # same answers, always
        query_bytes = counter.total - loaded_bytes
        measured[kind_name] = {
            "in_process": {"wall_s": local_wall, "ecalls": local_ecalls},
            "tcp": {"wall_s": remote_wall, "ecalls": remote_ecalls},
            "overhead_ratio": remote_wall / local_wall,
            "overhead_ms_per_query": (
                (remote_wall - local_wall) / NUM_QUERIES * 1000
            ),
            "wire_bytes_per_query": query_bytes / NUM_QUERIES,
            "wire_frames": counter.frames - loaded_frames,
            "match_counts": local_counts,
        }
    return measured


def test_wire_returns_identical_results(shape, roundtrip_runs):
    for kind_name in KINDS:
        run = roundtrip_runs[kind_name]
        assert run["match_counts"], kind_name
        assert sum(run["match_counts"]) > 0, kind_name


def test_wire_adds_no_enclave_work(shape, roundtrip_runs):
    """The network layer must not change *what* the enclave does: the remote
    deployment performs the same number of ecalls per query workload (the
    remote side adds only provisioning/hello ecalls, counted separately)."""
    for kind_name in KINDS:
        run = roundtrip_runs[kind_name]
        # Remote runs channel_offer/accept/provision/is_provisioned extras.
        extra = run["tcp"]["ecalls"] - run["in_process"]["ecalls"]
        assert 0 <= extra <= 8, (kind_name, extra)


def test_report_written(shape, roundtrip_runs):
    headers = [
        "kind",
        "in-process s",
        "tcp s",
        "overhead",
        "ms/query added",
        "wire KiB/query",
    ]
    rows = [
        [
            kind_name,
            f"{run['in_process']['wall_s']:.3f}",
            f"{run['tcp']['wall_s']:.3f}",
            f"{run['overhead_ratio']:.2f}x",
            f"{run['overhead_ms_per_query']:.2f}",
            f"{run['wire_bytes_per_query'] / 1024:.1f}",
        ]
        for kind_name, run in roundtrip_runs.items()
    ]
    text = format_table(
        f"Network round-trip overhead ({ROWS} rows, {NUM_QUERIES} range "
        f"queries, localhost TCP)",
        headers,
        rows,
    )
    write_result("net_roundtrip", text)

    payload = {
        "workload": {
            "rows": ROWS,
            "distinct_values": DISTINCT,
            "queries": NUM_QUERIES,
            "range_width": RANGE_WIDTH,
        },
        "kinds": roundtrip_runs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_net.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert len(rows) == len(KINDS)

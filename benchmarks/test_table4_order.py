"""Table 4: order leakage and search time per order option.

Uses the enclave cost model to *count* the architectural operations the
complexity column of Table 4 describes: dictionary probes/decryptions
(O(log|D|) for sorted and rotated, O(|D|) for unsorted) and attribute-
vector comparisons (O(|AV|) for range results, O(|AV|*|vid|) for ValueID
lists), alongside wall-clock timings of the dictionary search alone.
"""

from __future__ import annotations

import math

import pytest

from conftest import write_result
from repro.bench.report import format_table
from repro.encdict.attrvect import attr_vect_search
from repro.encdict.enclave_app import encrypt_search_range
from repro.encdict.search import OrdinalRange
from repro.sgx.costs import CostModel


def _measure_operation_counts(workbench, kind_name: str, range_size: int):
    """(decryptions, av_comparisons, |D|, |AV|) for one query."""
    engine = workbench.engine("EncDBDB", "C2", kind_name)
    query = workbench.queries("C2", range_size)[0]
    tau = encrypt_search_range(
        engine._pae,
        engine._column_key,
        OrdinalRange(
            engine._value_type.ordinal(query.low),
            engine._value_type.ordinal(query.high),
        ),
    )
    cost: CostModel = engine.host.cost_model
    before = cost.snapshot()
    result = engine.host.ecall("dict_search", engine.build.dictionary, tau)
    search_delta = cost.diff(before)
    before = cost.snapshot()
    attr_vect_search(engine.build.attribute_vector, result, cost_model=cost)
    scan_delta = cost.diff(before)
    return (
        search_delta["decryptions"],
        scan_delta["comparisons"],
        len(engine.build.dictionary),
        len(engine.build.attribute_vector),
        result,
    )


@pytest.fixture(scope="module")
def counts(workbench):
    measured = {}
    for kind_name, order_label in (("ED1", "sorted"), ("ED2", "rotated"),
                                   ("ED3", "unsorted")):
        measured[order_label] = {
            range_size: _measure_operation_counts(workbench, kind_name, range_size)
            for range_size in (2, 100)
        }
    return measured


@pytest.mark.parametrize("kind_name", ["ED1", "ED2", "ED3"])
def test_benchmark_dictionary_search_only(benchmark, workbench, kind_name):
    """Wall-clock of EnclDictSearch alone (no attribute-vector scan)."""
    engine = workbench.engine("EncDBDB", "C2", kind_name)
    query = workbench.queries("C2", 2)[0]
    tau = encrypt_search_range(
        engine._pae,
        engine._column_key,
        OrdinalRange(
            engine._value_type.ordinal(query.low),
            engine._value_type.ordinal(query.high),
        ),
    )
    benchmark.pedantic(
        lambda: engine.host.ecall("dict_search", engine.build.dictionary, tau),
        rounds=3,
        iterations=1,
    )


def test_report_table4(benchmark, counts):
    rows = []
    leakage = {"sorted": "full", "rotated": "bounded", "unsorted": "none"}
    for order_label, per_rs in counts.items():
        for range_size, (decryptions, comparisons, dict_size, av_size, _) in (
            per_rs.items()
        ):
            rows.append(
                (
                    order_label,
                    leakage[order_label],
                    f"RS={range_size}",
                    dict_size,
                    decryptions,
                    comparisons,
                )
            )
    text = format_table(
        "Table 4: order options -- measured dictionary decryptions and "
        "attribute-vector comparisons per query (column C2)",
        ["order option", "order leakage", "RS", "|D|", "dict decrypts",
         "AV comparisons"],
        rows,
    )
    write_result("table4_order", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 6


def test_sorted_and_rotated_probe_logarithmically(shape, counts):
    """Decryptions ~ O(log|D|): two binary searches plus constant extras."""
    for order_label in ("sorted", "rotated"):
        for range_size in (2, 100):
            decryptions, _, dict_size, _, _ = counts[order_label][range_size]
            budget = 3 * math.ceil(math.log2(dict_size)) + 8
            assert decryptions <= budget, (order_label, range_size, decryptions)


def test_unsorted_probes_linearly(shape, counts):
    for range_size in (2, 100):
        decryptions, _, dict_size, _, _ = counts["unsorted"][range_size]
        assert decryptions == dict_size + 2  # every entry + the two bounds


def test_range_results_scan_av_uniformly_per_slot(shape, counts):
    """Sorted/rotated results carry exactly two dummy-padded range slots and
    every slot — real, empty, or dummy — charges |AV| comparisons, so a
    query always costs exactly 2*|AV|. The count is therefore independent
    of how many slots were real, matching the padding's purpose: the
    comparison count must not reveal the number of matching ranges."""
    for order_label in ("sorted", "rotated"):
        for range_size in (2, 100):
            _, comparisons, _, av_size, result = counts[order_label][range_size]
            assert len(result.ranges) == 2
            assert comparisons == 2 * av_size, (order_label, range_size)


def test_vid_lists_multiply_av_comparisons(shape, counts):
    """Unsorted returns ValueID lists: comparisons = |AV| * |vid|."""
    for range_size in (2, 100):
        _, comparisons, _, av_size, result = counts["unsorted"][range_size]
        assert comparisons == av_size * len(result.vids)
        assert len(result.vids) >= range_size


def test_all_orders_return_identical_records(shape, workbench):
    """Security/performance options never change the answer."""
    queries = workbench.queries("C2", 100)[:5]
    reference = None
    for kind_name in ("ED1", "ED2", "ED3"):
        engine = workbench.engine("EncDBDB", "C2", kind_name)
        totals = [engine.run(query) for query in queries]
        if reference is None:
            reference = totals
        assert totals == reference, kind_name

"""Table 2: the 3x3 grid of encrypted dictionaries.

Structural regeneration: the registry must contain exactly the nine kinds
the paper defines, arranged by repetition option (rows) and order option
(columns).
"""

from __future__ import annotations

from conftest import write_result
from repro.bench.report import format_table
from repro.encdict.options import ALL_KINDS, OrderOption, RepetitionOption, kind_for


def test_report_table2(benchmark):
    order_columns = [OrderOption.SORTED, OrderOption.ROTATED, OrderOption.UNSORTED]
    rows = []
    for repetition in (
        RepetitionOption.REVEALING,
        RepetitionOption.SMOOTHING,
        RepetitionOption.HIDING,
    ):
        rows.append(
            [repetition.value]
            + [kind_for(repetition, order).name for order in order_columns]
        )
    text = format_table(
        "Table 2: characteristics of encrypted dictionaries",
        ["repetition \\ order"] + [order.value for order in order_columns],
        rows,
    )
    write_result("table2_grid", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows[0][1:] == ["ED1", "ED2", "ED3"]
    assert rows[1][1:] == ["ED4", "ED5", "ED6"]
    assert rows[2][1:] == ["ED7", "ED8", "ED9"]


def test_grid_is_complete_and_unique(shape):
    combinations = {(kind.repetition, kind.order) for kind in ALL_KINDS}
    assert len(combinations) == 9
    assert len(ALL_KINDS) == 9

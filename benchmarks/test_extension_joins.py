"""Extension benchmark: encrypted equi-joins (paper §4.2 future work).

Not a paper figure — it quantifies the join extension this reproduction
adds: the enclave issues per-query HMAC join tokens for both dictionaries
(O(|D_left| + |D_right|) decryptions), then the untrusted server hash-joins
the attribute vectors. The benchmark compares the encrypted join against a
plaintext hash join of the same data and records the token-issuance cost.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.harness import latency_stats
from repro.bench.report import format_table
from repro.crypto.drbg import HmacDrbg


ROWS_FACT = 3000
ROWS_DIM = 300


@pytest.fixture(scope="module")
def join_system():
    from repro import EncDBDBSystem

    rng = HmacDrbg(b"join-bench")
    system = EncDBDBSystem.create(seed=31)
    system.execute(
        "CREATE TABLE dim (sku ED2 VARCHAR(10), price ED1 INTEGER, "
        "label VARCHAR(10))"
    )
    system.execute("CREATE TABLE fact (sku ED5 VARCHAR(10), qty INTEGER)")
    skus = [f"S{i:05d}" for i in range(ROWS_DIM)]
    system.bulk_load(
        "dim",
        {
            "sku": skus,
            "price": [(i * 13) % 500 for i in range(ROWS_DIM)],
            "label": [f"L{i % 10}" for i in range(ROWS_DIM)],
        },
    )
    system.bulk_load(
        "fact",
        {
            "sku": [skus[rng.randint(0, ROWS_DIM - 1)] for _ in range(ROWS_FACT)],
            "qty": [rng.randint(1, 9) for _ in range(ROWS_FACT)],
        },
    )
    return system


def _run_join(system):
    return system.query(
        "SELECT fact.sku, fact.qty, dim.price FROM fact "
        "JOIN dim ON fact.sku = dim.sku WHERE dim.price < 250"
    )


def test_benchmark_encrypted_join(benchmark, join_system):
    result = benchmark.pedantic(lambda: _run_join(join_system), rounds=3, iterations=1)
    assert len(result) > 0


def test_report_join_extension(benchmark, join_system):
    import time

    cost = join_system.server.cost_model
    samples = []
    decrypt_counts = []
    for _ in range(5):
        before = cost.snapshot()
        start = time.perf_counter()
        result = _run_join(join_system)
        samples.append(time.perf_counter() - start)
        decrypt_counts.append(cost.diff(before)["decryptions"])
    stats = latency_stats(samples, len(result))
    rows = [
        ("rows (fact x dim)", f"{ROWS_FACT} x {ROWS_DIM}"),
        ("mean latency", f"{stats.mean_ms:.3f} ms"),
        ("95% CI", f"±{stats.ci95_ms:.3f} ms"),
        ("enclave decryptions/query", decrypt_counts[-1]),
        ("result rows", len(result)),
    ]
    text = format_table(
        "Extension: encrypted equi-join via enclave join tokens",
        ["metric", "value"],
        rows,
    )
    write_result("extension_joins", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert stats.mean > 0


def test_join_decryptions_linear_in_dictionary_sizes(shape, join_system):
    """Token issuance decrypts each dictionary entry once per side."""
    cost = join_system.server.cost_model
    before = cost.snapshot()
    _run_join(join_system)
    decryptions = cost.diff(before)["decryptions"]
    fact_entries = len(
        join_system.server.catalog.table("fact").column("sku").main_build.dictionary
    )
    dim_entries = len(
        join_system.server.catalog.table("dim").column("sku").main_build.dictionary
    )
    total_entries = fact_entries + dim_entries
    # tokens for both dictionaries + the filter's dictionary search + bounds.
    assert total_entries <= decryptions <= total_entries + 60


def test_join_matches_plaintext_reference(shape, join_system):
    result = _run_join(join_system)
    dim = join_system.server.catalog.table("dim")
    # White-box reference: rebuild plaintext tables via the owner's key.
    owner = join_system.owner
    reference_count = 0
    fact_result = join_system.query("SELECT fact.sku, fact.qty FROM fact "
                                    "JOIN dim ON fact.sku = dim.sku")
    prices = dict(
        join_system.query("SELECT sku, price FROM dim").rows
    )
    for sku, qty in fact_result:
        if prices[sku] < 250:
            reference_count += 1
    assert len(result) == reference_count

"""Figure 8's x-axis: latency as a function of dataset size.

The paper plots latencies for datasets from 1 M to 10.9 M rows. This sweep
reproduces the growth *shapes* on scaled sizes:

- MonetDB grows linearly (linear string scan over the whole column);
- EncDBDB on ED1 stays near-flat in the dictionary search and grows only
  through the (vectorized) attribute-vector scan and result size;
- EncDBDB on ED9 grows linearly with a large constant (|D| = |AV| linear
  scan of decryptions) — the paper's worst case.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.bench.harness import measure_query_latency
from repro.bench.report import format_table
from repro.workloads.datasets import dataset_sizes


def _sizes(settings) -> list[int]:
    return dataset_sizes(
        settings.rows,
        steps=max(3, settings.size_steps),
        minimum=max(2000, settings.rows // 8),
    )


@pytest.fixture(scope="module")
def sweep(workbench):
    sizes = _sizes(workbench.settings)
    series: dict[tuple[str, str], list[tuple[int, float]]] = {}
    for engine_name, kind_name in (
        ("MonetDB", None), ("EncDBDB", "ED1"), ("EncDBDB", "ED9"),
    ):
        label = engine_name if kind_name is None else f"{engine_name}/{kind_name}"
        for rows in sizes:
            queries = workbench.queries("C1", 2, rows)[:10]
            engine = workbench.engine(engine_name, "C1", kind_name, rows=rows)
            stats = measure_query_latency(engine.run, queries)
            series.setdefault((label, "C1"), []).append((rows, stats.mean))
    return sizes, series


def test_report_size_sweep(benchmark, sweep, workbench):
    sizes, series = sweep
    rows = []
    for (label, column_name), points in sorted(series.items()):
        for dataset_rows, mean in points:
            rows.append(
                (label, column_name, dataset_rows, f"{mean * 1e3:9.3f}")
            )
    text = format_table(
        "Figure 8 x-axis: mean latency vs dataset size (RS=2, C1)",
        ["engine", "column", "rows", "mean ms"],
        rows,
    )
    write_result("figure8_size_sweep", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows


def test_monetdb_grows_roughly_linearly(shape, sweep):
    sizes, series = sweep
    points = dict(series[("MonetDB", "C1")])
    small, large = sizes[0], sizes[-1]
    growth = points[large] / points[small]
    size_ratio = large / small
    assert growth > size_ratio / 4  # clearly scale-dependent


def test_encdbdb_ed1_grows_sublinearly(shape, sweep):
    """The log dictionary search + vectorized scan grows far slower than
    the data (the reason EncDBDB wins at warehouse scale)."""
    sizes, series = sweep
    points = dict(series[("EncDBDB/ED1", "C1")])
    small, large = sizes[0], sizes[-1]
    growth = points[large] / points[small]
    size_ratio = large / small
    assert growth < size_ratio / 2


def test_ed9_grows_linearly_and_dominates(shape, sweep):
    sizes, series = sweep
    ed9 = dict(series[("EncDBDB/ED9", "C1")])
    ed1 = dict(series[("EncDBDB/ED1", "C1")])
    small, large = sizes[0], sizes[-1]
    assert ed9[large] / ed9[small] > (large / small) / 3  # ~linear decrypts
    assert ed9[large] > 10 * ed1[large]  # worst case by a wide margin


def test_gap_to_monetdb_widens_with_scale(shape, sweep):
    sizes, series = sweep
    monetdb = dict(series[("MonetDB", "C1")])
    encdbdb = dict(series[("EncDBDB/ED1", "C1")])
    small, large = sizes[0], sizes[-1]
    assert encdbdb[large] / monetdb[large] < encdbdb[small] / monetdb[small]
